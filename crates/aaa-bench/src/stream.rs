//! Streaming workload driver: sustained change streams through the
//! engine's ingest log, with shape generators for bursty, diurnal and
//! adversarial hub-targeting arrival patterns, plus the staleness /
//! queue / balance accounting the pinned stream scenario gates in CI.
//!
//! Staleness is measured in **published epochs**, a deterministic
//! quantity: a batch submitted while the engine publishes epoch `e` and
//! first reflected by epoch `e'` has staleness `e' − e`. Throughput
//! (changes per second) is wall-clock-derived and reported info-only —
//! CI hosts are noisy, epochs are not.

use aaa_core::changes::{preferential_batch, NewVertex, VertexBatch};
use aaa_core::{AnytimeEngine, AssignStrategy, DynamicChange};
use aaa_graph::{AdjGraph, VertexId};
use aaa_observe::StreamTally;
use aaa_partition::vertex_balance;
use std::time::Instant;

/// Arrival pattern of the synthetic change stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamShape {
    /// Quiet baseline punctuated by 4× bursts every fourth tick.
    Bursty,
    /// A smooth day/night cycle: period 8, peak 4× the trough.
    Diurnal,
    /// Adversarial: every new vertex attaches only to the highest-degree
    /// hubs and rides CutEdge-PS, so load piles onto the hub-owning
    /// ranks tick after tick — the workload the background rebalancer
    /// exists to absorb.
    Hub,
}

impl StreamShape {
    /// All shapes, in the order the sweep binaries report them.
    pub const ALL: [StreamShape; 3] = [StreamShape::Bursty, StreamShape::Diurnal, StreamShape::Hub];

    /// Short name used in tables and scenario suffixes.
    pub fn name(&self) -> &'static str {
        match self {
            StreamShape::Bursty => "bursty",
            StreamShape::Diurnal => "diurnal",
            StreamShape::Hub => "hub",
        }
    }

    /// Batches offered at tick `t` — a pure function of the tick, so the
    /// whole arrival schedule is reproducible.
    pub fn intensity(&self, t: u64) -> usize {
        match self {
            StreamShape::Bursty => {
                if t % 4 == 3 {
                    4
                } else {
                    1
                }
            }
            StreamShape::Diurnal => {
                const DAY: [usize; 8] = [1, 1, 2, 3, 4, 3, 2, 1];
                DAY[(t % 8) as usize]
            }
            StreamShape::Hub => 2,
        }
    }
}

impl std::str::FromStr for StreamShape {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "bursty" => Ok(StreamShape::Bursty),
            "diurnal" => Ok(StreamShape::Diurnal),
            "hub" => Ok(StreamShape::Hub),
            other => Err(format!("stream shape wants bursty|diurnal|hub, got {other}")),
        }
    }
}

/// Knobs for one streaming run.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    pub shape: StreamShape,
    /// Driver ticks; each tick offers `shape.intensity(t)` batches and
    /// every second tick runs one RC step, so bursts genuinely queue.
    pub ticks: u64,
    /// New vertices per offered batch.
    pub batch: usize,
    /// Edges each new vertex attaches with.
    pub edges_per_vertex: usize,
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self { shape: StreamShape::Hub, ticks: 24, batch: 6, edges_per_vertex: 2, seed: 42 }
    }
}

/// What one streaming run measured. Everything except `changes_per_sec`
/// is an exact function of (graph, config, engine code).
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    pub offered: u64,
    pub ticks: u64,
    /// Per-batch epoch staleness, sorted ascending.
    pub staleness: Vec<u64>,
    /// Peak backlog at tick boundaries: offered batches not yet
    /// reflected in a published epoch.
    pub peak_queue: u64,
    pub final_imbalance: f64,
    pub changes_per_sec: f64,
}

impl StreamOutcome {
    /// The `q`-quantile of the staleness distribution (0 when empty).
    pub fn staleness_quantile(&self, q: f64) -> u64 {
        percentile(&self.staleness, q)
    }

    /// The report section the perf gate diffs; `changes_per_sec` rides
    /// along info-only.
    pub fn tally(&self) -> StreamTally {
        StreamTally {
            offered: self.offered,
            ticks: self.ticks,
            p99_staleness_epochs: self.staleness_quantile(0.99),
            max_staleness_epochs: self.staleness.last().copied().unwrap_or(0),
            peak_queue: self.peak_queue,
            final_imbalance_milli: (self.final_imbalance * 1000.0).round() as u64,
            changes_per_sec: self.changes_per_sec,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// An adversarial hub-targeting batch: every new vertex attaches only to
/// the current highest-degree vertices (with a seed-rotated start so
/// consecutive batches are not literally identical). Under CutEdge-PS
/// each addition lands on whichever rank owns its hubs, concentrating
/// load there.
pub fn hub_batch(g: &AdjGraph, count: usize, edges_per_vertex: usize, seed: u64) -> VertexBatch {
    let mut by_degree: Vec<VertexId> = g.vertices().collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let pool = by_degree.len().min((edges_per_vertex + 4).max(1));
    let hubs = &by_degree[..pool];
    let mut vertices = Vec::with_capacity(count);
    for i in 0..count {
        let want = edges_per_vertex.min(hubs.len());
        let start = (seed as usize + i) % hubs.len();
        let edges = (0..want).map(|j| (hubs[(start + j) % hubs.len()], 1)).collect();
        vertices.push(NewVertex { edges });
    }
    VertexBatch { vertices }
}

/// Drives the configured stream through `engine.submit`, stepping the
/// recombination loop on a fixed cadence, then drains the tail and
/// converges. Returns the measured outcome; the engine is left at its
/// converged fixed point so callers can compare answers across policies.
pub fn drive_stream(engine: &mut AnytimeEngine, cfg: &StreamConfig) -> StreamOutcome {
    let started = Instant::now();
    let mut offered = 0u64;
    let mut peak_queue = 0u64;
    // Submit epochs of batches not yet reflected in a published epoch.
    let mut outstanding: Vec<u64> = Vec::new();
    let mut staleness: Vec<u64> = Vec::new();
    let settle = |engine: &AnytimeEngine, outstanding: &mut Vec<u64>, out: &mut Vec<u64>| {
        if engine.pending_changes() == 0 {
            let now = engine.epochs_published();
            out.extend(outstanding.drain(..).map(|e| now.saturating_sub(e)));
        }
    };
    for t in 0..cfg.ticks {
        for i in 0..cfg.shape.intensity(t) {
            let seed = cfg.seed.wrapping_add(t * 17 + i as u64);
            let (batch, strategy) = match cfg.shape {
                StreamShape::Hub => (
                    hub_batch(engine.graph(), cfg.batch, cfg.edges_per_vertex, seed),
                    AssignStrategy::CutEdge { seed, tries: 1 },
                ),
                _ => (
                    preferential_batch(engine.graph(), cfg.batch, cfg.edges_per_vertex, seed),
                    AssignStrategy::RoundRobin,
                ),
            };
            let epoch = engine.epochs_published();
            engine
                .submit_with_strategy(DynamicChange::AddVertices(batch), strategy)
                .expect("stream batch submits");
            outstanding.push(epoch);
            offered += 1;
        }
        // Backlog = offered batches no published epoch reflects yet. The
        // coalescing log itself may hold fewer entries (same-strategy
        // batches fold), so this is the honest queue-pressure number.
        peak_queue = peak_queue.max(outstanding.len() as u64);
        // Step at half the offered cadence so bursts genuinely queue and
        // staleness has a distribution instead of a constant.
        if t % 2 == 1 {
            engine.rc_step();
            settle(engine, &mut outstanding, &mut staleness);
        }
    }
    while engine.pending_changes() > 0 {
        engine.rc_step();
    }
    settle(engine, &mut outstanding, &mut staleness);
    engine.run_to_convergence();
    staleness.sort_unstable();
    let wall = started.elapsed().as_secs_f64();
    StreamOutcome {
        offered,
        ticks: cfg.ticks,
        staleness,
        peak_queue,
        final_imbalance: vertex_balance(engine.partition()),
        changes_per_sec: if wall > 0.0 { offered as f64 / wall } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_core::{EngineConfig, RebalanceConfig, RebalancePolicy};
    use aaa_graph::generators::{barabasi_albert, WeightModel};

    #[test]
    fn shapes_parse_and_schedules_are_bounded() {
        for shape in StreamShape::ALL {
            assert_eq!(shape.name().parse::<StreamShape>().unwrap(), shape);
            for t in 0..32 {
                let k = shape.intensity(t);
                assert!((1..=4).contains(&k), "{shape:?} tick {t} offered {k}");
            }
        }
        assert!("weekly".parse::<StreamShape>().is_err());
        // Bursty actually bursts; diurnal actually cycles.
        assert_eq!(StreamShape::Bursty.intensity(3), 4);
        assert_eq!(StreamShape::Bursty.intensity(0), 1);
        assert_ne!(StreamShape::Diurnal.intensity(0), StreamShape::Diurnal.intensity(4));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&v, 0.5), 50);
    }

    #[test]
    fn hub_batches_target_the_hubs() {
        let g = barabasi_albert(80, 2, WeightModel::Unit, 3).unwrap();
        let hub = (0..80u32).max_by_key(|&v| g.degree(v)).unwrap();
        let hub_degree = g.degree(hub);
        let batch = hub_batch(&g, 10, 2, 5);
        assert_eq!(batch.len(), 10);
        for nv in &batch.vertices {
            assert_eq!(nv.edges.len(), 2);
            for &(t, _) in &nv.edges {
                assert!(
                    g.degree(t) * 3 >= hub_degree,
                    "target {t} (degree {}) is not hub-class (hub degree {hub_degree})",
                    g.degree(t)
                );
            }
        }
    }

    /// The acceptance property of the tentpole: under the adversarial
    /// hub stream the adaptive policy ends measurably less imbalanced
    /// than static, while the converged closeness stays byte-identical
    /// to the never-rebalanced oracle.
    #[test]
    fn adaptive_beats_static_on_hub_stream_with_identical_answers() {
        let g = barabasi_albert(90, 2, WeightModel::Unit, 8).unwrap();
        let stream = StreamConfig { ticks: 12, batch: 5, ..StreamConfig::default() };

        let mut static_engine =
            AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
        let static_out = drive_stream(&mut static_engine, &stream);

        let mut cfg = EngineConfig::deterministic(4);
        cfg.rebalance = RebalanceConfig {
            every: 2,
            trigger: 1.05,
            ..RebalanceConfig::with_policy(RebalancePolicy::Adaptive)
        };
        let mut adaptive_engine = AnytimeEngine::new(g, cfg).unwrap();
        let adaptive_out = drive_stream(&mut adaptive_engine, &stream);

        assert!(adaptive_engine.stats().migrations > 0, "rebalancer never fired");
        assert!(
            adaptive_out.final_imbalance < static_out.final_imbalance,
            "adaptive ({}) must beat static ({}) under the hub stream",
            adaptive_out.final_imbalance,
            static_out.final_imbalance
        );
        let a = adaptive_engine.closeness();
        let b = static_engine.closeness();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "rebalancing changed the answer");
        }
    }

    #[test]
    fn drive_stream_accounts_every_batch() {
        let g = barabasi_albert(60, 2, WeightModel::Unit, 2).unwrap();
        let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(3)).unwrap();
        let cfg = StreamConfig {
            shape: StreamShape::Bursty,
            ticks: 8,
            batch: 3,
            edges_per_vertex: 2,
            seed: 1,
        };
        let out = drive_stream(&mut engine, &cfg);
        let expected: u64 = (0..8).map(|t| cfg.shape.intensity(t) as u64).sum();
        assert_eq!(out.offered, expected);
        assert_eq!(out.staleness.len() as u64, out.offered, "every batch got a staleness sample");
        assert!(out.peak_queue >= 4, "the burst tick must queue (got {})", out.peak_queue);
        let tally = out.tally();
        assert_eq!(tally.offered, out.offered);
        assert!(tally.max_staleness_epochs >= tally.p99_staleness_epochs);
        assert!(tally.final_imbalance_milli >= 1000, "balance ratio is at least 1.0");
    }
}
