//! Shared harness utilities for the per-figure experiment binaries.
//!
//! Every binary accepts:
//!
//! ```text
//! --scale <n>           graph size (default 2000; the paper uses 50,000 —
//!                       see EXPERIMENTS.md for the scaling rationale)
//! --procs <P>           logical processors (default 16, as in the paper)
//! --seed <s>            RNG seed (default 42)
//! --csv <path>          also write the table as CSV
//! --checkpoint-every <N>  snapshot the engine after every N RC steps
//! --fault <R@S>         kill rank R at superstep S; the harness recovers
//!                       it from the latest snapshot and resumes
//! --chaos <seed:rate>   arm the seeded message-fault injector at the given
//!                       overall fault rate and drive convergence through
//!                       the supervised retry loop
//! --report <path>       also run the pinned observed scenario and write
//!                       its machine-readable RunReport JSON (consumed by
//!                       the `perfgate` binary)
//! --trace <path>        also run the pinned observed scenario and write a
//!                       Chrome-trace JSON array (open in Perfetto /
//!                       chrome://tracing)
//! --wire full|delta     RC wire format: full rows (default) or sparse
//!                       improvement deltas (suffixes the pinned scenario
//!                       name with `:wire=delta` so gating stays per-wire)
//! --store plain|compressed
//!                       graph storage backend for the pinned scenario:
//!                       plain adjacency (default) or the compressed
//!                       gap-coded store fed through external-memory
//!                       ingest, with domain decomposition running on the
//!                       compressed backend (suffixes the scenario name
//!                       with `:store=compressed`)
//! --policy static|ps|rs|adaptive
//!                       restrict streaming sweeps (`stream_load`) to one
//!                       background-rebalance policy
//! --ticks <N>           driver ticks for streaming workloads
//! --metrics closeness|betweenness
//!                       comma-separated centrality metrics the engine
//!                       maintains. Closeness is always computed; listing
//!                       it alone keeps the legacy bit-identical path.
//!                       Adding `betweenness` turns on the incremental
//!                       Brandes column and suffixes the pinned scenario
//!                       name with `:betweenness` so it gates against its
//!                       own committed baseline
//! ```
//!
//! Reported *time* is the LogP-simulated cluster time (compute max per
//! superstep + modelled communication) — the quantity comparable to the
//! paper's minutes on its 16-processor testbed. Wall-clock of this
//! in-process run is also shown for transparency.

use aaa_core::{EngineConfig, MetricKind, WireFormat};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Paper-scale constants.
pub const PAPER_VERTICES: usize = 50_000;

/// Parsed common CLI arguments.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    pub scale: usize,
    pub procs: usize,
    pub seed: u64,
    pub csv: Option<PathBuf>,
    /// Snapshot after every N RC steps (`--checkpoint-every N`).
    pub checkpoint_every: Option<usize>,
    /// Kill rank R at superstep S (`--fault R@S`); recovery comes from the
    /// latest snapshot.
    pub fault: Option<(usize, u64)>,
    /// Arm the chaos layer with `ChaosPlan::seeded(seed, rate, …)`
    /// (`--chaos seed:rate`).
    pub chaos: Option<(u64, f64)>,
    /// Write the pinned observed scenario's RunReport JSON here
    /// (`--report path`; see [`observe`]).
    pub report: Option<PathBuf>,
    /// Write the pinned observed scenario's Chrome trace here
    /// (`--trace path`).
    pub trace: Option<PathBuf>,
    /// RC wire format (`--wire full|delta`).
    pub wire: WireFormat,
    /// Graph storage backend for the pinned scenario
    /// (`--store plain|compressed`).
    pub store: StoreBackend,
    /// Restrict streaming sweeps to one rebalance policy
    /// (`--policy static|ps|rs|adaptive`).
    pub policy: Option<aaa_core::RebalancePolicy>,
    /// Driver ticks for streaming workloads (`--ticks N`).
    pub ticks: Option<u64>,
    /// Centrality metrics the engine maintains
    /// (`--metrics closeness,betweenness`). Empty keeps the legacy
    /// closeness-only path bit-identical.
    pub metrics: Vec<MetricKind>,
}

/// Which [`aaa_store::GraphStore`] backend the pinned scenario routes the
/// graph through before the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreBackend {
    /// In-memory adjacency lists (the engine's native representation).
    #[default]
    Plain,
    /// Compressed gap-coded store built via external-memory ingest; domain
    /// decomposition runs directly on it.
    Compressed,
}

impl std::str::FromStr for StoreBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "plain" => Ok(StoreBackend::Plain),
            "compressed" => Ok(StoreBackend::Compressed),
            other => Err(format!("--store wants plain|compressed, got {other}")),
        }
    }
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            scale: 2_000,
            procs: 16,
            seed: 42,
            csv: None,
            checkpoint_every: None,
            fault: None,
            chaos: None,
            report: None,
            trace: None,
            wire: WireFormat::Full,
            store: StoreBackend::Plain,
            policy: None,
            ticks: None,
            metrics: Vec::new(),
        }
    }
}

impl CommonArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut take = |what: &str| -> String {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {what}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => out.scale = take("--scale").parse().expect("--scale wants an integer"),
                "--procs" => out.procs = take("--procs").parse().expect("--procs wants an integer"),
                "--seed" => out.seed = take("--seed").parse().expect("--seed wants an integer"),
                "--csv" => out.csv = Some(PathBuf::from(take("--csv"))),
                "--checkpoint-every" => {
                    out.checkpoint_every = Some(
                        take("--checkpoint-every")
                            .parse()
                            .expect("--checkpoint-every wants an integer"),
                    )
                }
                "--fault" => {
                    let spec = take("--fault");
                    out.fault = Some(parse_fault_spec(&spec).unwrap_or_else(|| {
                        eprintln!("--fault wants rank@superstep, e.g. --fault 2@5");
                        std::process::exit(2);
                    }));
                }
                "--chaos" => {
                    let spec = take("--chaos");
                    out.chaos = Some(parse_chaos_spec(&spec).unwrap_or_else(|| {
                        eprintln!("--chaos wants seed:rate, e.g. --chaos 7:0.05");
                        std::process::exit(2);
                    }));
                }
                "--report" => out.report = Some(PathBuf::from(take("--report"))),
                "--trace" => out.trace = Some(PathBuf::from(take("--trace"))),
                "--wire" => {
                    out.wire = take("--wire").parse().unwrap_or_else(|e: String| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    })
                }
                "--store" => {
                    out.store = take("--store").parse().unwrap_or_else(|e: String| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    })
                }
                "--policy" => {
                    out.policy = Some(take("--policy").parse().unwrap_or_else(|e: String| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }))
                }
                "--ticks" => {
                    out.ticks = Some(take("--ticks").parse().expect("--ticks wants an integer"))
                }
                "--metrics" => {
                    let spec = take("--metrics");
                    out.metrics = parse_metrics_spec(&spec).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale n] [--procs P] [--seed s] [--csv path] \
                         [--checkpoint-every N] [--fault R@S] [--chaos seed:rate] \
                         [--report path] [--trace path] [--wire full|delta] \
                         [--store plain|compressed] \
                         [--policy static|ps|rs|adaptive] [--ticks N] \
                         [--metrics closeness,betweenness]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Scales a paper-sized quantity (defined against 50,000 vertices) down
    /// to this run's graph size, keeping at least `min`.
    pub fn scaled(&self, paper_value: usize, min: usize) -> usize {
        ((paper_value as f64 * self.scale as f64 / PAPER_VERTICES as f64).round() as usize).max(min)
    }

    /// Engine configuration for this run (parallel execution, 1 Gb/s
    /// Ethernet LogP pricing — the paper's testbed).
    pub fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig::with_procs(self.procs);
        config.wire = self.wire;
        config.metrics = self.metrics.clone();
        config
    }
}

/// Parses a `rank@superstep` fault spec.
fn parse_fault_spec(spec: &str) -> Option<(usize, u64)> {
    let (rank, step) = spec.split_once('@')?;
    Some((rank.trim().parse().ok()?, step.trim().parse().ok()?))
}

/// Parses a comma-separated `--metrics` list. Closeness is always
/// maintained, so listing it is accepted as a no-op.
fn parse_metrics_spec(spec: &str) -> Result<Vec<MetricKind>, String> {
    spec.split(',')
        .map(|tok| match tok.trim() {
            "closeness" => Ok(MetricKind::Closeness),
            "betweenness" => Ok(MetricKind::Betweenness),
            other => Err(format!("--metrics wants closeness|betweenness, got {other}")),
        })
        .collect()
}

/// Parses a `seed:rate` chaos spec. The rate must lie in `[0, 1]`.
fn parse_chaos_spec(spec: &str) -> Option<(u64, f64)> {
    let (seed, rate) = spec.split_once(':')?;
    let rate: f64 = rate.trim().parse().ok()?;
    if !(0.0..=1.0).contains(&rate) {
        return None;
    }
    Some((seed.trim().parse().ok()?, rate))
}

/// A printable/CSV-able results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ =
            writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table and optionally writes CSV.
    pub fn emit(&self, csv: Option<&PathBuf>) {
        print!("{}", self.render());
        if let Some(path) = csv {
            let mut s = String::new();
            let _ = writeln!(s, "{}", self.headers.join(","));
            for row in &self.rows {
                let _ = writeln!(s, "{}", row.join(","));
            }
            std::fs::write(path, s).expect("CSV write");
            println!("(csv written to {})", path.display());
        }
    }
}

/// Formats simulated microseconds as seconds with sensible precision.
pub fn fmt_sim_secs(us: f64) -> String {
    format!("{:.2}", us / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_rounds_and_floors() {
        let a = CommonArgs { scale: 2_000, ..Default::default() };
        assert_eq!(a.scaled(500, 1), 20);
        assert_eq!(a.scaled(6000, 1), 240);
        assert_eq!(a.scaled(1, 5), 5); // floor
        let full = CommonArgs { scale: 50_000, ..Default::default() };
        assert_eq!(full.scaled(512, 1), 512);
    }

    #[test]
    fn table_renders_and_aligns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_seconds() {
        assert_eq!(fmt_sim_secs(1_500_000.0), "1.50");
    }

    #[test]
    fn fault_spec_parses() {
        assert_eq!(parse_fault_spec("2@5"), Some((2, 5)));
        assert_eq!(parse_fault_spec(" 0 @ 12 "), Some((0, 12)));
        assert_eq!(parse_fault_spec("2"), None);
        assert_eq!(parse_fault_spec("a@b"), None);
    }

    #[test]
    fn metrics_spec_parses_and_rejects_unknown_names() {
        assert_eq!(parse_metrics_spec("closeness"), Ok(vec![MetricKind::Closeness]));
        assert_eq!(
            parse_metrics_spec("closeness, betweenness"),
            Ok(vec![MetricKind::Closeness, MetricKind::Betweenness])
        );
        assert_eq!(parse_metrics_spec("betweenness"), Ok(vec![MetricKind::Betweenness]));
        assert!(parse_metrics_spec("pagerank").is_err());
    }

    #[test]
    fn chaos_spec_parses_and_rejects_bad_rates() {
        assert_eq!(parse_chaos_spec("7:0.05"), Some((7, 0.05)));
        assert_eq!(parse_chaos_spec(" 42 : 1.0 "), Some((42, 1.0)));
        assert_eq!(parse_chaos_spec("7:1.5"), None);
        assert_eq!(parse_chaos_spec("7:-0.1"), None);
        assert_eq!(parse_chaos_spec("7"), None);
        assert_eq!(parse_chaos_spec("x:0.1"), None);
    }
}

pub mod experiments;
pub mod net;
pub mod observe;
pub mod stream;
