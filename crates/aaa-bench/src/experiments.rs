//! Implementations of every paper experiment (Figures 4–8) plus the
//! additional ablations. Each returns a [`Table`] so the thin binaries in
//! `src/bin/` only parse arguments and print.

use crate::{fmt_sim_secs, CommonArgs, Table};
use aaa_core::baseline::restart_run;
use aaa_core::changes::{community_batch, CommunityBatchParams, VertexBatch};
use aaa_core::strategies::{cut_edge_assign, round_robin_assign};
use aaa_core::{
    AnytimeEngine, AssignStrategy, ChaosPlan, CheckpointPolicy, ClusterError, ConvergenceSummary,
    CoreError, DdPartitioner, EngineConfig, FaultPlan, QualityTracker, RetryPolicy, Snapshot,
};
use aaa_graph::generators::{barabasi_albert, WeightModel};
use aaa_graph::AdjGraph;
use aaa_partition::quality::new_cut_edges;
use aaa_partition::{MultilevelPartitioner, Partitioner};
use aaa_runtime::{ExchangeSchedule, LogPModel};

/// The experiments' base workload: an undirected scale-free graph, as the
/// paper generates with Pajek.
pub fn base_graph(args: &CommonArgs) -> AdjGraph {
    barabasi_albert(args.scale, 3, WeightModel::Unit, args.seed).expect("generator params valid")
}

/// Community-structured addition batch following the paper's Louvain
/// extraction protocol (§V.B.2).
pub fn addition_batch(graph: &AdjGraph, count: usize, seed: u64) -> VertexBatch {
    let params = CommunityBatchParams {
        count,
        community_size: (count / 8).clamp(5, 60),
        attach_edges: 2,
        seed,
        ..Default::default()
    };
    community_batch(graph, &params).0
}

fn extend_graph(graph: &AdjGraph, batch: &VertexBatch) -> AdjGraph {
    let mut full = graph.clone();
    let base = full.num_vertices() as u32;
    full.add_vertices(batch.len());
    for (a, b, w) in batch.global_edges(base) {
        full.add_edge(a, b, w).expect("batch validated");
    }
    full
}

/// Steps the engine `steps` times regardless of convergence (the paper
/// injects at a fixed RC index even if the static analysis already
/// converged).
fn step_n(engine: &mut AnytimeEngine, steps: usize) {
    for _ in 0..steps {
        engine.rc_step();
    }
}

/// Chaos horizon for harness runs: faults stop after this superstep, so
/// every `--chaos` drive is recoverable (partial-synchrony GST).
const CHAOS_HORIZON: u64 = 64;

/// Drives the engine to convergence under the harness's chaos / checkpoint
/// / fault flags: arms the fault (if any), snapshots per
/// `--checkpoint-every`, and on an injected rank failure recovers the rank
/// from the latest snapshot and resumes RC. With `--chaos` the drive goes
/// through the supervised retry loop instead of plain RC stepping
/// (`--checkpoint-every` is not supported in that mode). With no flags set
/// this is plain `run_to_convergence`.
pub fn drive_to_convergence(engine: &mut AnytimeEngine, args: &CommonArgs) -> ConvergenceSummary {
    if let Some((seed, rate)) = args.chaos {
        assert!(
            args.checkpoint_every.is_none(),
            "--chaos and --checkpoint-every cannot be combined"
        );
        engine.set_chaos(ChaosPlan::seeded(seed, rate, CHAOS_HORIZON));
        if let Some((rank, superstep)) = args.fault {
            engine.inject_fault(FaultPlan::at(rank, superstep));
        }
        let retry = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };
        let latest = engine.snapshot();
        loop {
            match engine.run_supervised(&retry) {
                Ok(run) => {
                    assert!(run.converged(), "harness chaos plans are eventually quiet");
                    return run.summary;
                }
                Err(CoreError::Cluster(ClusterError::RankFailed { rank, .. })) => {
                    engine.recover_rank(rank, &latest).expect("recovery from snapshot");
                }
                Err(e) => panic!("drive failed: {e}"),
            }
        }
    }
    if args.checkpoint_every.is_none() && args.fault.is_none() {
        return engine.run_to_convergence();
    }
    if let Some((rank, superstep)) = args.fault {
        engine.inject_fault(FaultPlan::at(rank, superstep));
    }
    let policy = match args.checkpoint_every {
        Some(n) => CheckpointPolicy::EveryNRcSteps(n),
        None => CheckpointPolicy::Manual,
    };
    // Recovery baseline: without a snapshot from before the failure there
    // is nothing to restore from, so take one up front.
    let mut latest = engine.snapshot();
    loop {
        let mut newest: Option<Snapshot> = None;
        let result = engine.run_to_convergence_checkpointed(policy, |bytes| {
            // Round-trip through the wire format — the persisted artifact
            // is what a real deployment would recover from.
            newest = Some(Snapshot::from_bytes(bytes).expect("own snapshot is readable"));
        });
        if let Some(s) = newest {
            latest = s;
        }
        match result {
            Ok(summary) => return summary,
            Err(CoreError::Cluster(ClusterError::RankFailed { rank, .. })) => {
                engine.recover_rank(rank, &latest).expect("recovery from snapshot");
            }
            Err(e) => panic!("drive failed: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 4 — Anytime Anywhere vs. Baseline Restart
// ---------------------------------------------------------------------------

/// 512 (scaled) vertex additions injected at RC0/RC4/RC8; anytime anywhere
/// with RoundRobin-PS vs. restarting from scratch.
pub fn fig4(args: &CommonArgs) -> Table {
    let g = base_graph(args);
    let additions = args.scaled(512, 8);
    let batch = addition_batch(&g, additions, args.seed + 1);
    let full = extend_graph(&g, &batch);

    // End-to-end cost of producing the final (post-change) centralities.
    // The baseline has no anytime property: it runs the initial analysis,
    // then — when the change arrives — throws it away and recomputes the
    // changed graph from scratch. Independent of the injection step.
    let (_, s1) = restart_run(&g, &args.engine_config()).expect("baseline run");
    let (_, s2) = restart_run(&full, &args.engine_config()).expect("baseline run");
    let baseline_us = s1.sim_total_us() + s2.sim_total_us();

    let mut table = Table::new(
        format!(
            "Figure 4 — Baseline Restart vs. Anytime Anywhere ({} additions, {} procs, {} vertices)",
            additions, args.procs, args.scale
        ),
        &["inject at", "anytime anywhere (RoundRobin-PS) [s]", "baseline restart [s]"],
    );
    for inject in [0usize, 4, 8] {
        let mut engine = AnytimeEngine::new(g.clone(), args.engine_config()).expect("engine");
        step_n(&mut engine, inject);
        engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).expect("batch valid");
        drive_to_convergence(&mut engine, args);
        table.row(vec![
            format!("RC{inject}"),
            fmt_sim_secs(engine.stats().sim_total_us()),
            fmt_sim_secs(baseline_us),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figures 5 & 6 — single-step vertex additions, three strategies
// ---------------------------------------------------------------------------

/// Batches of 500–6000 (scaled) vertices injected at one RC step;
/// RoundRobin-PS vs CutEdge-PS vs Repartition-S. `inject_at = 0` is
/// Figure 5, `inject_at = 8` is Figure 6.
pub fn single_step_additions(args: &CommonArgs, inject_at: usize) -> Table {
    let g = base_graph(args);
    let figure = if inject_at == 0 { 5 } else { 6 };
    let mut table = Table::new(
        format!(
            "Figure {figure} — vertex additions at RC{inject_at} ({} procs, {} vertices)",
            args.procs, args.scale
        ),
        &["vertices added", "Repartition-S [s]", "CutEdge-PS [s]", "RoundRobin-PS [s]"],
    );
    for paper_count in [500usize, 1500, 3000, 4500, 6000] {
        let count = args.scaled(paper_count, 8);
        let batch = addition_batch(&g, count, args.seed + paper_count as u64);
        let mut cells = vec![count.to_string()];
        for strategy in [
            AssignStrategy::Repartition { seed: args.seed },
            AssignStrategy::CutEdge { seed: args.seed, tries: 4 },
            AssignStrategy::RoundRobin,
        ] {
            let mut engine = AnytimeEngine::new(g.clone(), args.engine_config()).expect("engine");
            step_n(&mut engine, inject_at);
            let before = engine.stats().sim_total_us();
            engine.apply_vertex_additions(&batch, strategy).expect("batch valid");
            engine.run_to_convergence();
            let delta = engine.stats().sim_total_us() - before;
            cells.push(fmt_sim_secs(delta));
        }
        table.row(cells);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 7 — new cut-edges per strategy
// ---------------------------------------------------------------------------

/// Number of *new* cut edges each strategy creates. Pure partition-level
/// measurement (no DV state), so it runs at the paper's full 50,000-vertex
/// scale by default.
pub fn fig7(args: &CommonArgs) -> Table {
    let g = base_graph(args);
    let base = g.num_vertices() as u32;
    let initial =
        MultilevelPartitioner::seeded(args.seed).partition(&g, args.procs).expect("partition");

    let mut table = Table::new(
        format!(
            "Figure 7 — number of new cut-edges ({} procs, {} vertices)",
            args.procs, args.scale
        ),
        &["vertices added", "Repartition-S", "CutEdge-PS", "RoundRobin-PS"],
    );
    for paper_count in [500usize, 1500, 3000, 4500, 6000] {
        let count = args.scaled(paper_count, 8);
        let batch = addition_batch(&g, count, args.seed + paper_count as u64);
        let edges: Vec<(u32, u32)> =
            batch.global_edges(base).iter().map(|&(a, b, _)| (a, b)).collect();

        // Repartition-S: repartition the merged graph; new cut edges are
        // the new edges that end up crossing parts.
        let merged = extend_graph(&g, &batch);
        let repart = MultilevelPartitioner::seeded(args.seed + 1)
            .partition(&merged, args.procs)
            .expect("partition");
        let cut_repart = new_cut_edges(&repart, &edges);

        // CutEdge-PS: partition the batch-internal graph, extend.
        let assign = cut_edge_assign(&batch, base, args.procs, args.seed, 4).expect("assign");
        let mut ce = initial.clone();
        ce.extend(assign).expect("extend");
        let cut_ce = new_cut_edges(&ce, &edges);

        // RoundRobin-PS.
        let mut rr = initial.clone();
        rr.extend(round_robin_assign(count, args.procs, 0)).expect("extend");
        let cut_rr = new_cut_edges(&rr, &edges);

        table.row(vec![
            count.to_string(),
            cut_repart.to_string(),
            cut_ce.to_string(),
            cut_rr.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 8 — incremental vertex additions
// ---------------------------------------------------------------------------

/// Additions spread over 10 RC steps at four rates; Baseline Restart vs
/// the three strategies.
pub fn fig8(args: &CommonArgs) -> Table {
    const WAVES: usize = 10;
    let g = base_graph(args);
    let mut table = Table::new(
        format!(
            "Figure 8 — incremental vertex additions over {WAVES} RC steps ({} procs, {} vertices)",
            args.procs, args.scale
        ),
        &[
            "added per step (cumulative)",
            "baseline restart [s]",
            "Repartition-S [s]",
            "RoundRobin-PS [s]",
            "CutEdge-PS [s]",
        ],
    );
    for paper_rate in [51usize, 187, 383, 561] {
        let per_step = args.scaled(paper_rate, 2);
        let mut cells = vec![format!("{per_step} ({})", per_step * WAVES)];

        // Baseline restart: a fresh full analysis after every wave.
        {
            let mut total = 0.0;
            let mut snapshot = g.clone();
            let (_, s) = restart_run(&snapshot, &args.engine_config()).expect("run");
            total += s.sim_total_us();
            for wave in 0..WAVES {
                let batch = addition_batch(&snapshot, per_step, args.seed + 77 + wave as u64);
                snapshot = extend_graph(&snapshot, &batch);
                let (_, s) = restart_run(&snapshot, &args.engine_config()).expect("run");
                total += s.sim_total_us();
            }
            cells.push(fmt_sim_secs(total));
        }

        // The anytime anywhere strategies.
        for strategy in [
            AssignStrategy::Repartition { seed: args.seed },
            AssignStrategy::RoundRobin,
            AssignStrategy::CutEdge { seed: args.seed, tries: 4 },
        ] {
            let mut engine = AnytimeEngine::new(g.clone(), args.engine_config()).expect("engine");
            for wave in 0..WAVES {
                engine.rc_step();
                let batch = addition_batch(engine.graph(), per_step, args.seed + 77 + wave as u64);
                engine.apply_vertex_additions(&batch, strategy).expect("batch valid");
            }
            engine.run_to_convergence();
            cells.push(fmt_sim_secs(engine.stats().sim_total_us()));
        }
        // cells were pushed in the table's column order:
        // [label, baseline, Repartition-S, RoundRobin-PS, CutEdge-PS].
        table.row(cells);
    }
    table
}

// ---------------------------------------------------------------------------
// Extra: anytime quality
// ---------------------------------------------------------------------------

/// Closeness error and top-k recall per RC step (the anytime property).
pub fn anytime_quality(args: &CommonArgs) -> Table {
    let g = base_graph(args);
    let mut engine = AnytimeEngine::new(g.clone(), args.engine_config()).expect("engine");
    let mut tracker = QualityTracker::new(&g, 20);
    let mut table = Table::new(
        format!("Anytime quality ({} procs, {} vertices)", args.procs, args.scale),
        &["RC step", "mean relative error", "top-20 recall"],
    );
    let s = tracker.record(0, &engine.closeness());
    table.row(vec!["0 (IA)".into(), format!("{:.4}", s.error), format!("{:.2}", s.top_k_recall)]);
    for step in 1..=24 {
        let more = engine.rc_step();
        let s = tracker.record(step, &engine.closeness());
        table.row(vec![
            step.to_string(),
            format!("{:.4}", s.error),
            format!("{:.2}", s.top_k_recall),
        ]);
        if !more {
            break;
        }
    }
    assert!(
        tracker.error_is_monotone_nonincreasing(),
        "anytime violation: {:?}",
        tracker.samples()
    );
    table
}

// ---------------------------------------------------------------------------
// Checkpoint overhead
// ---------------------------------------------------------------------------

/// Snapshot size and (de)serialization cost as the graph grows: converge a
/// static analysis at `scale/4`, `scale/2` and `scale`, then measure a full
/// checkpoint round-trip at each size.
pub fn checkpoint_overhead(args: &CommonArgs) -> Table {
    let mut table = Table::new(
        format!("Checkpoint overhead ({} procs, seed {})", args.procs, args.seed),
        &["vertices", "edges", "snapshot bytes", "checkpoint [µs]", "restore [µs]"],
    );
    for scale in [args.scale / 4, args.scale / 2, args.scale] {
        let scale = scale.max(64);
        let g = barabasi_albert(scale, 3, WeightModel::Unit, args.seed).expect("generator");
        let edges = g.num_edges();
        let mut engine = AnytimeEngine::new(g, args.engine_config()).expect("engine");
        engine.run_to_convergence();

        let started = std::time::Instant::now();
        let bytes = engine.checkpoint_bytes().expect("checkpoint");
        let checkpoint_us = started.elapsed().as_secs_f64() * 1e6;

        let started = std::time::Instant::now();
        let restored = AnytimeEngine::restore(&bytes[..], args.engine_config()).expect("restore");
        let restore_us = started.elapsed().as_secs_f64() * 1e6;
        assert_eq!(restored.rc_steps_done(), engine.rc_steps_done(), "resume point preserved");

        table.row(vec![
            scale.to_string(),
            edges.to_string(),
            bytes.len().to_string(),
            format!("{checkpoint_us:.0}"),
            format!("{restore_us:.0}"),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Chaos overhead
// ---------------------------------------------------------------------------

/// Cost of surviving message faults: converge the base graph under
/// increasing fault rates (same seed, finite horizon) through the
/// supervised loop, and report traffic / repair / simulated-time
/// amplification against the clean run. Rate 0 doubles as the zero-cost
/// check — its counters must read 0.
pub fn chaos_overhead(args: &CommonArgs) -> Table {
    let g = base_graph(args);
    let mut table = Table::new(
        format!(
            "Chaos overhead ({} procs, {} vertices, seed {})",
            args.procs, args.scale, args.seed
        ),
        &["fault rate", "messages", "injected", "retransmits", "sim time [s]", "overhead"],
    );
    let retry = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };
    let mut clean_us = 0.0;
    for rate in [0.0, 0.02, 0.05, 0.10] {
        let mut engine = AnytimeEngine::new(g.clone(), args.engine_config()).expect("engine");
        engine.set_chaos(ChaosPlan::seeded(args.seed, rate, 32));
        let run = engine.run_supervised(&retry).expect("supervised run");
        assert!(run.converged(), "rate {rate}: an eventually-quiet plan must reconverge");
        let stats = engine.stats();
        if rate == 0.0 {
            assert_eq!(stats.faults.injected(), 0, "rate 0 must inject nothing");
            clean_us = stats.sim_total_us();
        }
        let overhead = if rate == 0.0 {
            "—".to_string()
        } else {
            format!("{:+.1}%", (stats.sim_total_us() / clean_us - 1.0) * 100.0)
        };
        table.row(vec![
            format!("{rate:.2}"),
            stats.messages.to_string(),
            stats.faults.injected().to_string(),
            stats.faults.retransmits.to_string(),
            fmt_sim_secs(stats.sim_total_us()),
            overhead,
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// DD-phase partitioner ablation: cut quality vs. engine cost.
pub fn ablation_partitioner(args: &CommonArgs) -> Table {
    let g = base_graph(args);
    let mut table = Table::new(
        format!("Ablation — DD partitioner ({} procs, {} vertices)", args.procs, args.scale),
        &["partitioner", "cut edges", "RC steps", "messages", "sim time [s]"],
    );
    for (name, dd) in [
        ("multilevel", DdPartitioner::Multilevel { seed: args.seed }),
        ("block", DdPartitioner::Block),
        ("round-robin", DdPartitioner::RoundRobin),
        ("hash", DdPartitioner::Hash),
        ("random", DdPartitioner::Random { seed: args.seed }),
    ] {
        let mut cfg = args.engine_config();
        cfg.dd = dd;
        let mut engine = AnytimeEngine::new(g.clone(), cfg).expect("engine");
        let cut = aaa_partition::cut_edges(&g, engine.partition());
        let summary = engine.run_to_convergence();
        let stats = engine.stats();
        table.row(vec![
            name.into(),
            cut.to_string(),
            summary.steps.to_string(),
            stats.messages.to_string(),
            fmt_sim_secs(stats.sim_total_us()),
        ]);
    }
    table
}

/// LogP/network ablation: network speed × exchange schedule × message cap.
pub fn ablation_logp(args: &CommonArgs) -> Table {
    let g = base_graph(args);
    let mut table = Table::new(
        format!("Ablation — LogP model & schedule ({} procs, {} vertices)", args.procs, args.scale),
        &["network", "schedule", "message cap", "comm time [s]", "total sim [s]"],
    );
    let nets: [(&str, LogPModel); 3] = [
        ("1G ethernet", LogPModel::ethernet_1g()),
        ("fast fabric", LogPModel::fast_interconnect()),
        ("free", LogPModel::free()),
    ];
    for (net_name, model) in nets {
        for (sched_name, sched) in
            [("sequential", ExchangeSchedule::Sequential), ("pairwise", ExchangeSchedule::Pairwise)]
        {
            for (cap_name, cap) in [("64 KiB", 64 << 10), ("1 MiB", 1 << 20)] {
                let mut cfg: EngineConfig = args.engine_config();
                cfg.cluster.model = model;
                cfg.cluster.schedule = sched;
                cfg.message_cap_bytes = cap;
                let mut engine = AnytimeEngine::new(g.clone(), cfg).expect("engine");
                engine.run_to_convergence();
                let stats = engine.stats();
                table.row(vec![
                    net_name.into(),
                    sched_name.into(),
                    cap_name.into(),
                    fmt_sim_secs(stats.sim_comm_us),
                    fmt_sim_secs(stats.sim_total_us()),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny-scale smoke tests: every experiment produces a table of the
    /// right shape without panicking.
    fn tiny() -> CommonArgs {
        CommonArgs { scale: 120, procs: 3, seed: 7, ..Default::default() }
    }

    #[test]
    fn fig4_shape() {
        let t = fig4(&tiny());
        assert!(
            t.render().lines().filter(|l| l.starts_with("RC") || l.contains("RC")).count() >= 3
        );
    }

    #[test]
    fn fig5_and_6_shapes() {
        for inject in [0, 2] {
            let t = single_step_additions(&tiny(), inject);
            assert!(t.render().lines().count() >= 8);
        }
    }

    #[test]
    fn fig7_shape_and_ordering_signal() {
        let t = fig7(&CommonArgs { scale: 2_000, procs: 4, seed: 3, ..Default::default() });
        let r = t.render();
        assert!(r.contains("RoundRobin"));
        assert!(r.lines().count() >= 8);
    }

    #[test]
    fn fig8_shape() {
        let t = fig8(&tiny());
        assert!(t.render().lines().count() >= 7);
    }

    #[test]
    fn quality_is_monotone_at_tiny_scale() {
        let t = anytime_quality(&tiny());
        assert!(t.render().contains("0 (IA)"));
    }

    #[test]
    fn checkpoint_overhead_shape() {
        let t = checkpoint_overhead(&tiny());
        let r = t.render();
        assert!(r.contains("snapshot bytes"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    fn fig4_with_checkpoints_and_fault_recovers() {
        let args = CommonArgs {
            scale: 120,
            procs: 3,
            seed: 7,
            checkpoint_every: Some(2),
            fault: Some((1, 4)),
            ..Default::default()
        };
        // The fault fires during each run; the harness must recover from
        // the latest snapshot and still converge to a full table.
        let t = fig4(&args);
        assert!(t.render().lines().count() >= 5);
    }

    #[test]
    fn chaos_overhead_shape() {
        let t = chaos_overhead(&tiny());
        let r = t.render();
        assert!(r.contains("fault rate"));
        assert!(r.lines().count() >= 6, "four rates + header lines");
    }

    #[test]
    fn fig4_under_chaos_still_converges() {
        let args = CommonArgs { chaos: Some((5, 0.1)), ..tiny() };
        let t = fig4(&args);
        assert!(t.render().lines().count() >= 5);
    }

    #[test]
    fn ablations_run() {
        let t = ablation_partitioner(&tiny());
        assert!(t.render().contains("multilevel"));
        let t = ablation_logp(&tiny());
        assert!(t.render().contains("ethernet"));
    }
}
