//! Streaming workload sweep: drives bursty, diurnal and adversarial
//! hub-targeting change streams through the ingest log under each
//! background-rebalance policy, reporting sustained changes/sec
//! (wall-derived, info-only), deterministic p99/max epoch staleness,
//! peak backlog, final imbalance and migration traffic.
//!
//! `--report` / `--trace` additionally emit the pinned **stream
//! scenario** (`fig4:pinned:stream`: the hub stream under the adaptive
//! policy), whose report CI gates against
//! `results/baselines/ci_smoke_stream.json`. Use `--policy` / `--ticks`
//! to restrict the sweep; `--shape` filtering is deliberately absent —
//! the table is the point.

use aaa_bench::experiments::base_graph;
use aaa_bench::stream::{drive_stream, StreamConfig, StreamShape};
use aaa_bench::{fmt_sim_secs, observe, CommonArgs, Table};
use aaa_core::{AnytimeEngine, RebalanceConfig, RebalancePolicy};

const POLICIES: [RebalancePolicy; 4] =
    [RebalancePolicy::Static, RebalancePolicy::Ps, RebalancePolicy::Rs, RebalancePolicy::Adaptive];

fn policy_name(p: RebalancePolicy) -> &'static str {
    match p {
        RebalancePolicy::Static => "static",
        RebalancePolicy::Ps => "ps",
        RebalancePolicy::Rs => "rs",
        RebalancePolicy::Adaptive => "adaptive",
    }
}

fn main() {
    let args = CommonArgs::parse();
    if args.report.is_some() || args.trace.is_some() {
        let (report, trace) = observe::observed_stream_run("fig4", &args);
        if let Some(path) = &args.report {
            std::fs::write(path, report.to_json_string()).expect("report write");
            println!("(run report written to {})", path.display());
        }
        if let Some(path) = &args.trace {
            std::fs::write(path, trace).expect("trace write");
            println!("(chrome trace written to {})", path.display());
        }
    }

    let g = base_graph(&args);
    let mut table = Table::new(
        "Streaming workloads × rebalance policies",
        &[
            "shape",
            "policy",
            "changes/s",
            "p50 stale",
            "p99 stale",
            "max stale",
            "peak queue",
            "final imb",
            "migrations",
            "migr bytes",
            "sim s",
        ],
    );
    for shape in StreamShape::ALL {
        for policy in POLICIES {
            if args.policy.is_some_and(|p| p != policy) {
                continue;
            }
            let mut config = args.engine_config();
            config.rebalance =
                RebalanceConfig { every: 2, trigger: 1.05, ..RebalanceConfig::with_policy(policy) };
            let mut engine = AnytimeEngine::new(g.clone(), config).expect("engine");
            let stream = StreamConfig {
                shape,
                ticks: args.ticks.unwrap_or(24),
                batch: args.scaled(256, 4),
                edges_per_vertex: 2,
                seed: args.seed + 1,
            };
            let outcome = drive_stream(&mut engine, &stream);
            let stats = engine.stats();
            table.row(vec![
                shape.name().into(),
                policy_name(policy).into(),
                format!("{:.0}", outcome.changes_per_sec),
                outcome.staleness_quantile(0.50).to_string(),
                outcome.staleness_quantile(0.99).to_string(),
                outcome.staleness.last().copied().unwrap_or(0).to_string(),
                outcome.peak_queue.to_string(),
                format!("{:.3}", outcome.final_imbalance),
                stats.migrations.to_string(),
                stats.migration_bytes.to_string(),
                fmt_sim_secs(stats.sim_comm_us),
            ]);
        }
    }
    table.emit(args.csv.as_ref());
    println!("\nExpected shape: static ends most imbalanced under the hub stream; the");
    println!("adaptive policy absorbs the skew with budgeted migrations while every");
    println!("policy converges to the same closeness fixed point (staleness is in");
    println!("published epochs — deterministic; changes/sec is host-dependent).");
}
