//! Publication cost at serving scale: the `O(changed)` delta path with a
//! maintained top-k index vs. the `O(n)` full-rebuild baseline, driven
//! against the [`Publisher`] directly with synthetic closeness values — a
//! 100k-vertex dense-DV engine would need ~40 GB of distance state, but
//! the publish hot path only ever sees (vertex, closeness) rows, so the
//! headline measures exactly the code the engine runs per epoch.
//!
//! `--report` / `--trace` emit the pinned **publish scenario**
//! (`fig4:pinned:publish`, the engine-driven change stream with one forced
//! full republication) whose `publish` tally CI gates against
//! `results/baselines/ci_smoke_publish.json`.

use aaa_bench::{observe, CommonArgs, Table};
use aaa_core::{BoundsMode, Publisher};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use std::time::Instant;

/// Published view size (vertices) for the headline measurement.
const N: usize = 100_000;
/// Epochs published per path.
const EPOCHS: usize = 50;
/// Rows re-stated per epoch (~1% of the view).
const DIRTY: usize = 1_000;
/// Top-k queries timed per path.
const TOPK_ITERS: usize = 2_000;
const K: usize = 10;

/// Deterministic base closeness: distinct, descending-ish, all finite.
fn base_closeness(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 / (i as f64 + 2.0)).collect()
}

/// `DIRTY` distinct rows with fresh values, sorted by id — the shape the
/// engine hands `publish_changes` after draining epoch-dirty sets.
fn changed_entries(rng: &mut ChaCha8Rng, n: usize, k: usize) -> Vec<(u32, f64)> {
    let mut ids = BTreeSet::new();
    while ids.len() < k {
        ids.insert(rng.gen_range(0..n as u32));
    }
    ids.into_iter().map(|v| (v, rng.gen_range(0.0..1.0))).collect()
}

fn main() {
    let args = CommonArgs::parse();
    if args.report.is_some() || args.trace.is_some() {
        let (report, trace) = observe::observed_publish_run("fig4", &args);
        if let Some(path) = &args.report {
            std::fs::write(path, report.to_json_string()).expect("report write");
            println!("(run report written to {})", path.display());
        }
        if let Some(path) = &args.trace {
            std::fs::write(path, trace).expect("trace write");
            println!("(chrome trace written to {})", path.display());
        }
    }

    let base = base_closeness(N);
    let mut table = Table::new(
        format!("Epoch publication cost at n={N} ({EPOCHS} epochs per row)"),
        &["path", "rows/epoch", "us/epoch", "chunks copied", "chunks shared", "speedup"],
    );
    let mut headline_speedup = 0.0;
    let mut headline_delta = Publisher::new(BoundsMode::None);

    // Two dirt levels: ~1% uniform (the headline — touches nearly every
    // 1024-row chunk, so the win is O(changed) row gathering plus
    // incremental top-k upkeep) and ~0.1% (sparse enough that structural
    // chunk sharing kicks in on top).
    for dirty in [DIRTY, DIRTY / 10] {
        // Pre-generate one change stream so both paths publish identical
        // epochs (and the final views can be cross-checked bit-for-bit).
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let stream: Vec<Vec<(u32, f64)>> =
            (0..EPOCHS).map(|_| changed_entries(&mut rng, N, dirty)).collect();

        // Delta path: one full publish to seed the view, then O(changed)
        // epochs with chunk sharing and incremental top-k upkeep.
        let mut delta = Publisher::new(BoundsMode::None);
        delta.publish(0, 0, false, base.clone(), Vec::new());
        let seeded = delta.stats();
        let started = Instant::now();
        for (i, entries) in stream.iter().enumerate() {
            delta.publish_changes(i + 1, 0, false, N, entries.clone(), Vec::new());
        }
        let delta_elapsed = started.elapsed();

        // Full-rebuild baseline: the pre-delta behavior — regather all n
        // rows and rebuild the chunk store and top-k index every epoch.
        let mut full = Publisher::new(BoundsMode::None);
        full.set_force_full(true);
        let mut current = base.clone();
        full.publish(0, 0, false, current.clone(), Vec::new());
        let started = Instant::now();
        for (i, entries) in stream.iter().enumerate() {
            for &(v, c) in entries {
                current[v as usize] = c;
            }
            full.publish(i + 1, 0, false, current.clone(), Vec::new());
        }
        let full_elapsed = started.elapsed();

        // Both paths must land on the same epoch, bit for bit.
        let (dv, fv) = (delta.latest(), full.latest());
        assert_eq!(dv.closeness(), fv.closeness(), "delta view drifted from the full rebuild");
        assert_eq!(dv.top_k(K), fv.top_k(K), "maintained top-k drifted from the rebuilt index");
        assert_eq!(dv.top_k(K), dv.top_k_rescan(K), "maintained top-k drifted from the oracle");

        let dstats = delta.stats();
        let per_epoch = |d: std::time::Duration| d.as_secs_f64() * 1e6 / EPOCHS as f64;
        let speedup = full_elapsed.as_secs_f64() / delta_elapsed.as_secs_f64();
        table.row(vec![
            format!("full rebuild ({dirty} dirty)"),
            N.to_string(),
            format!("{:.1}", per_epoch(full_elapsed)),
            (full.stats().chunks_copied - seeded.chunks_copied).to_string(),
            "0".into(),
            "1.0x".into(),
        ]);
        table.row(vec![
            format!("delta ({dirty} dirty)"),
            dirty.to_string(),
            format!("{:.1}", per_epoch(delta_elapsed)),
            (dstats.chunks_copied - seeded.chunks_copied).to_string(),
            dstats.chunks_shared.to_string(),
            format!("{speedup:.1}x"),
        ]);
        if dirty == DIRTY {
            headline_speedup = speedup;
            headline_delta = delta;
        }
    }
    table.emit(args.csv.as_ref());
    let speedup = headline_speedup;
    let dstats = headline_delta.stats();

    // Top-k query cost on the final view: the maintained index serves
    // from its snapshot in O(k); the rescan oracle scans all n rows.
    let view = headline_delta.latest();
    let started = Instant::now();
    let mut sink = 0usize;
    for _ in 0..TOPK_ITERS {
        sink += view.top_k(K).len();
    }
    let maintained = started.elapsed();
    let started = Instant::now();
    for _ in 0..TOPK_ITERS {
        sink += view.top_k_rescan(K).len();
    }
    let rescan = started.elapsed();
    assert_eq!(sink, 2 * TOPK_ITERS * K);

    let per_query = |d: std::time::Duration| d.as_secs_f64() * 1e6 / TOPK_ITERS as f64;
    let topk_speedup = rescan.as_secs_f64() / maintained.as_secs_f64();
    let mut table = Table::new(
        format!("top_k({K}) on the final view ({TOPK_ITERS} queries)"),
        &["path", "us/query", "speedup"],
    );
    table.row(vec!["rescan (oracle)".into(), format!("{:.2}", per_query(rescan)), "1.0x".into()]);
    table.row(vec![
        "maintained index".into(),
        format!("{:.2}", per_query(maintained)),
        format!("{topk_speedup:.0}x"),
    ]);
    table.emit(args.csv.as_ref());

    println!(
        "\n(delta epochs: {}, topk rebuilds: {}, publish speedup {speedup:.1}x, \
         top-k speedup {topk_speedup:.0}x)",
        dstats.delta_epochs, dstats.topk_rebuilds
    );
    if speedup >= 5.0 {
        println!("target met: >= 5x faster epoch publication at ~1% dirty rows");
    } else {
        println!("below the 5x publication-speedup target on this machine");
    }
}
