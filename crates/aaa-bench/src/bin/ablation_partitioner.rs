//! Ablation: how the DD-phase partitioner affects cut size, convergence
//! steps and simulated time (why the paper uses METIS-family partitioning).

use aaa_bench::{experiments, observe, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    observe::maybe_observe("ablation_partitioner", &args);
    experiments::ablation_partitioner(&args).emit(args.csv.as_ref());
}
