//! Reproduces Figure 5: vertex additions at recombination step 0 (RC0) —
//! Repartition-S vs CutEdge-PS vs RoundRobin-PS across batch sizes.

use aaa_bench::{experiments, observe, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    observe::maybe_observe("fig5", &args);
    experiments::single_step_additions(&args, 0).emit(args.csv.as_ref());
    println!("\nExpected shape (paper): RoundRobin-PS/CutEdge-PS win for small batches;");
    println!("Repartition-S overtakes them as the batch grows (crossover).");
}
