//! Reproduces Figure 8: incremental vertex additions spread over 10 RC
//! steps at four rates — Baseline Restart vs the three strategies.

use aaa_bench::{experiments, observe, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    observe::maybe_observe("fig8", &args);
    experiments::fig8(&args).emit(args.csv.as_ref());
    println!("\nExpected shape (paper): baseline restart is far above everything;");
    println!("RoundRobin-PS/CutEdge-PS win at low rates; Repartition-S becomes");
    println!("competitive at the highest rate.");
}
