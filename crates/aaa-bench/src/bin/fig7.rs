//! Reproduces Figure 7: number of new cut-edges created by each strategy.
//! Pure partition-level measurement, so it defaults to the paper's full
//! 50,000-vertex scale.

use aaa_bench::{experiments, observe, CommonArgs};

fn main() {
    let mut args = CommonArgs::parse();
    // No DV state needed: default to the paper's full scale unless the user
    // explicitly passed --scale.
    if args.scale == CommonArgs::default().scale && !std::env::args().any(|a| a == "--scale") {
        args.scale = 50_000;
    }
    observe::maybe_observe("fig7", &args);
    experiments::fig7(&args).emit(args.csv.as_ref());
    println!("\nExpected shape (paper): Repartition-S < CutEdge-PS < RoundRobin-PS in");
    println!("new cut-edges, with the gap growing with the batch size.");
}
