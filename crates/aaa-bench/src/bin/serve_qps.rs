//! Serving throughput under live updates: reader threads hammer point
//! lookups against the engine's published views while a writer thread
//! streams dynamic changes and re-converges — the pipeline's headline
//! number (target: ≥ 1M point-lookups/sec aggregate).
//!
//! `--report` / `--trace` additionally emit the pinned **serve scenario**
//! (`fig4:pinned:serve`, a deterministic coalescing change stream whose
//! `changes` tally CI gates against `results/baselines/ci_smoke_serve.json`).

use aaa_bench::experiments::base_graph;
use aaa_bench::{observe, CommonArgs, Table};
use aaa_core::{AnytimeEngine, DynamicChange, EngineConfig};
use aaa_serve::ServeHandle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const READERS: usize = 4;
const MEASURE: Duration = Duration::from_millis(1500);

fn main() {
    let args = CommonArgs::parse();
    if args.report.is_some() || args.trace.is_some() {
        let (report, trace) = observe::observed_serve_run("fig4", &args);
        if let Some(path) = &args.report {
            std::fs::write(path, report.to_json_string()).expect("report write");
            println!("(run report written to {})", path.display());
        }
        if let Some(path) = &args.trace {
            std::fs::write(path, trace).expect("trace write");
            println!("(chrome trace written to {})", path.display());
        }
    }

    let g = base_graph(&args);
    let n = g.num_vertices() as u32;
    let mut engine =
        AnytimeEngine::new(g, EngineConfig::deterministic(args.procs)).expect("engine");
    engine.run_to_convergence();
    let handle = ServeHandle::attach(&engine);

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let handle = handle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut lookups = 0u64;
                let mut epochs_seen = 1u64;
                let mut last_epoch = 0u64;
                let mut v = r as u32;
                while !stop.load(Ordering::Relaxed) {
                    let view = handle.view();
                    if view.epoch != last_epoch {
                        last_epoch = view.epoch;
                        epochs_seen += 1;
                    }
                    // One atomic view load amortized over a scan burst —
                    // the intended reader pattern (hold the epoch, query).
                    for _ in 0..64 {
                        let c = view.point(v % n).expect("views are complete");
                        assert!(c.is_finite());
                        lookups += 1;
                        v = v.wrapping_add(1);
                    }
                }
                (lookups, epochs_seen)
            })
        })
        .collect();

    // Writer: stream edge churn through the ingest log, draining at RC
    // barriers, until the measurement window closes.
    let started = Instant::now();
    let mut updates = 0u64;
    let mut flips = 0u32;
    while started.elapsed() < MEASURE {
        let u = (updates as u32 * 7919) % n;
        let v = (updates as u32 * 104_729 + 1) % n;
        if u != v {
            let change = if engine.graph().has_edge(u, v) {
                DynamicChange::RemoveEdge { u, v }
            } else {
                DynamicChange::AddEdge { u, v, w: 1 + (flips % 3) }
            };
            if engine.submit(change).is_ok() {
                updates += 1;
            }
            flips = flips.wrapping_add(1);
        }
        engine.rc_step();
    }
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);

    let mut total_lookups = 0u64;
    let mut total_epoch_switches = 0u64;
    for r in readers {
        let (lookups, epochs_seen) = r.join().expect("reader panicked");
        total_lookups += lookups;
        total_epoch_switches += epochs_seen;
    }
    let qps = total_lookups as f64 / elapsed;

    let mut table = Table::new(
        "Serving throughput under live updates (published-view point lookups)",
        &["readers", "window_s", "updates", "epochs", "lookups", "lookups/sec"],
    );
    table.row(vec![
        READERS.to_string(),
        format!("{elapsed:.2}"),
        updates.to_string(),
        engine.epochs_published().to_string(),
        total_lookups.to_string(),
        format!("{qps:.0}"),
    ]);
    table.emit(args.csv.as_ref());
    println!("\n(reader epoch switches observed: {total_epoch_switches})");
    if qps >= 1_000_000.0 {
        println!("target met: ≥ 1,000,000 point-lookups/sec against live views");
    } else {
        println!("below the 1M lookups/sec target on this machine");
    }
}
