//! Serving throughput under live updates: one reader thread per query
//! kind — point lookups, batched lookups (`points`), maintained top-k and
//! certified error bounds — hammers the engine's published views while a
//! writer thread streams dynamic changes and re-converges. The point
//! reader is the pipeline's headline (target: ≥ 1M point-lookups/sec);
//! the per-kind rows show what batching and the maintained index buy.
//!
//! `--report` / `--trace` additionally emit the pinned **serve scenario**
//! (`fig4:pinned:serve`, a deterministic coalescing change stream whose
//! `changes` tally CI gates against `results/baselines/ci_smoke_serve.json`).

use aaa_bench::experiments::base_graph;
use aaa_bench::{observe, CommonArgs, Table};
use aaa_core::{AnytimeEngine, BoundsMode, DynamicChange, EngineConfig};
use aaa_serve::ServeHandle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One reader per query kind.
const KINDS: [&str; 4] = ["point", "batched(32)", "top_k(10)", "bound"];
const BATCH: usize = 32;
const MEASURE: Duration = Duration::from_millis(1500);

fn main() {
    let args = CommonArgs::parse();
    if args.report.is_some() || args.trace.is_some() {
        let (report, trace) = observe::observed_serve_run("fig4", &args);
        if let Some(path) = &args.report {
            std::fs::write(path, report.to_json_string()).expect("report write");
            println!("(run report written to {})", path.display());
        }
        if let Some(path) = &args.trace {
            std::fs::write(path, trace).expect("trace write");
            println!("(chrome trace written to {})", path.display());
        }
    }

    let g = base_graph(&args);
    let n = g.num_vertices() as u32;
    // Certified bounds on so the `bound` reader measures a real query;
    // the gated report above builds its own (BoundsMode::None) engine.
    let mut config = EngineConfig::deterministic(args.procs);
    config.publish_bounds = BoundsMode::Certified;
    let mut engine = AnytimeEngine::new(g, config).expect("engine");
    engine.run_to_convergence();
    let handle = ServeHandle::attach(&engine);

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..KINDS.len())
        .map(|r| {
            let handle = handle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut lookups = 0u64;
                let mut epochs_seen = 1u64;
                let mut last_epoch = 0u64;
                let mut v = r as u32;
                let mut ids = vec![0u32; BATCH];
                while !stop.load(Ordering::Relaxed) {
                    let view = handle.view();
                    if view.epoch != last_epoch {
                        last_epoch = view.epoch;
                        epochs_seen += 1;
                    }
                    // One atomic view load amortized over a query burst —
                    // the intended reader pattern (hold the epoch, query).
                    for _ in 0..64 {
                        match r {
                            0 => {
                                let c = view.point(v % n).expect("views are complete");
                                assert!(c.is_finite());
                            }
                            1 => {
                                for slot in ids.iter_mut() {
                                    *slot = v % n;
                                    v = v.wrapping_add(1);
                                }
                                for c in view.points(&ids) {
                                    assert!(c.expect("views are complete").is_finite());
                                }
                            }
                            2 => {
                                let top = view.top_k(10);
                                assert!(top.len() <= 10);
                            }
                            _ => {
                                let b = view.error_bound(v % n).expect("certified bounds on");
                                assert!(b >= 0.0);
                            }
                        }
                        lookups += 1;
                        v = v.wrapping_add(1);
                    }
                }
                (lookups, epochs_seen)
            })
        })
        .collect();

    // Writer: stream edge churn through the ingest log, draining at RC
    // barriers, until the measurement window closes.
    let started = Instant::now();
    let mut updates = 0u64;
    let mut flips = 0u32;
    while started.elapsed() < MEASURE {
        let u = (updates as u32 * 7919) % n;
        let v = (updates as u32 * 104_729 + 1) % n;
        if u != v {
            let change = if engine.graph().has_edge(u, v) {
                DynamicChange::RemoveEdge { u, v }
            } else {
                DynamicChange::AddEdge { u, v, w: 1 + (flips % 3) }
            };
            if engine.submit(change).is_ok() {
                updates += 1;
            }
            flips = flips.wrapping_add(1);
        }
        engine.rc_step();
    }
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);

    let mut per_kind = Vec::new();
    let mut total_epoch_switches = 0u64;
    for (kind, r) in KINDS.iter().zip(readers) {
        let (queries, epochs_seen) = r.join().expect("reader panicked");
        total_epoch_switches += epochs_seen;
        // Rows touched per query: a batched query answers BATCH lookups.
        let rows = match *kind {
            "batched(32)" => queries * BATCH as u64,
            "top_k(10)" => queries * 10,
            _ => queries,
        };
        per_kind.push((*kind, queries, rows));
    }

    let mut table = Table::new(
        "Serving throughput under live updates (one reader per query kind)",
        &["query kind", "window_s", "updates", "epochs", "queries/sec", "rows/sec"],
    );
    for &(kind, queries, rows) in &per_kind {
        table.row(vec![
            kind.to_string(),
            format!("{elapsed:.2}"),
            updates.to_string(),
            engine.epochs_published().to_string(),
            format!("{:.0}", queries as f64 / elapsed),
            format!("{:.0}", rows as f64 / elapsed),
        ]);
    }
    table.emit(args.csv.as_ref());
    println!("\n(reader epoch switches observed: {total_epoch_switches})");
    let point_qps = per_kind[0].1 as f64 / elapsed;
    let batched_rps = per_kind[1].2 as f64 / elapsed;
    if point_qps >= 1_000_000.0 {
        println!("target met: ≥ 1,000,000 point-lookups/sec against live views");
    } else {
        println!("below the 1M lookups/sec target on this machine");
    }
    println!(
        "(batched lookups deliver {:.1}x the point reader's rows/sec)",
        batched_rps / point_qps
    );
}
