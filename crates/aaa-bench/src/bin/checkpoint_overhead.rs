//! Measures anytime-persistence overhead: snapshot size and checkpoint /
//! restore latency at `--scale`/4, `--scale`/2 and `--scale` vertices.

use aaa_bench::{experiments, observe, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    observe::maybe_observe("checkpoint_overhead", &args);
    experiments::checkpoint_overhead(&args).emit(args.csv.as_ref());
    println!("\nSnapshot size is dominated by the per-rank DV rows (Θ(n²/P) distances");
    println!("per rank at convergence), so bytes grow quadratically with the vertex");
    println!("count while checkpoint/restore time stays I/O-shaped (linear in bytes).");
}
