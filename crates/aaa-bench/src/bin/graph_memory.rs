//! Measures bytes/edge and build time for every graph storage backend.
//!
//! Builds the same Barabási–Albert graph as in-memory adjacency lists, CSR,
//! and the compressed gap-coded store (via external-memory ingest from the
//! streaming generator), then reports per-backend memory and build time.
//! The compressed row splits out the successor-structure bytes — the
//! quantity the ≤4 bytes/arc target (vs 8 bytes/arc for CSR's
//! target+weight pair) is stated against.
//!
//! ```text
//! cargo run --release -p aaa-bench --bin graph_memory -- \
//!     [--scale n] [--m m] [--seed s] [--budget-mb B] [--compressed-only] \
//!     [--csv path]
//! ```
//!
//! `--compressed-only` skips the in-memory backends so graphs far beyond
//! RAM (e.g. 10M vertices / 100M edges with `--scale 10000000 --m 10`) can
//! be measured: the edge stream never materializes, it spills through the
//! pair sorter and builds the compressed store directly.

use aaa_bench::Table;
use aaa_graph::generators::{ba_stream, barabasi_albert, WeightModel};
use aaa_graph::Csr;
use aaa_store::{CompressedGraph, PairSorter};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    scale: usize,
    m: usize,
    seed: u64,
    budget_mb: usize,
    compressed_only: bool,
    csv: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut out =
        Args { scale: 100_000, m: 3, seed: 42, budget_mb: 256, compressed_only: false, csv: None };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => out.scale = take("--scale").parse().expect("--scale wants an integer"),
            "--m" => out.m = take("--m").parse().expect("--m wants an integer"),
            "--seed" => out.seed = take("--seed").parse().expect("--seed wants an integer"),
            "--budget-mb" => {
                out.budget_mb = take("--budget-mb").parse().expect("--budget-mb wants an integer")
            }
            "--compressed-only" => out.compressed_only = true,
            "--csv" => out.csv = Some(PathBuf::from(take("--csv"))),
            "--help" | "-h" => {
                eprintln!(
                    "usage: graph_memory [--scale n] [--m m] [--seed s] [--budget-mb B] \
                     [--compressed-only] [--csv path]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    out
}

fn row(
    table: &mut Table,
    backend: &str,
    build_s: f64,
    bytes: usize,
    num_arcs: u64,
    num_edges: u64,
) {
    table.row(vec![
        backend.to_string(),
        format!("{build_s:.2}"),
        bytes.to_string(),
        format!("{:.2}", bytes as f64 / num_arcs.max(1) as f64),
        format!("{:.2}", bytes as f64 / num_edges.max(1) as f64),
    ]);
}

fn main() {
    let args = parse_args();
    let wm = WeightModel::Unit;

    // Compressed store: streaming generator → external-memory pair sorter
    // → gap-coded rows. This path never holds the graph in adjacency form.
    let dir = std::env::temp_dir().join(format!("aaa-graph-memory-{}", std::process::id()));
    let started = Instant::now();
    let stream = ba_stream(args.scale, args.m, wm, args.seed).expect("generator params valid");
    let mut sorter =
        PairSorter::new(&dir, args.budget_mb << 20).expect("scratch directory available");
    for (u, v, w) in stream {
        sorter.push_edge(u, v, w).expect("generated edges are valid");
    }
    let runs = sorter.runs_spilled();
    let arcs = sorter.finish().expect("merge");
    let compressed =
        CompressedGraph::from_sorted_arcs(args.scale, false, arcs).expect("compressed build");
    let compressed_s = started.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    let (num_arcs, num_edges) = (compressed.num_arcs(), compressed.num_edges() as u64);

    println!(
        "BA graph: {} vertices, {num_edges} edges ({num_arcs} arcs), m = {}, seed = {}",
        args.scale, args.m, args.seed
    );
    println!("external ingest: {runs} spilled runs at a {} MiB budget", args.budget_mb);

    let mut table = Table::new(
        "graph memory by backend",
        &["backend", "build_s", "bytes", "bytes/arc", "bytes/edge"],
    );
    row(
        &mut table,
        "compressed(successors)",
        compressed_s,
        compressed.data_bytes(),
        num_arcs,
        num_edges,
    );
    row(
        &mut table,
        "compressed(total)",
        compressed_s,
        compressed.memory_bytes(),
        num_arcs,
        num_edges,
    );

    if !args.compressed_only {
        let started = Instant::now();
        let g = barabasi_albert(args.scale, args.m, wm, args.seed).expect("generator params valid");
        let adj_s = started.elapsed().as_secs_f64();
        row(&mut table, "adjacency", adj_s, g.memory_bytes(), num_arcs, num_edges);

        let started = Instant::now();
        let csr = Csr::from_adj(&g);
        let csr_s = started.elapsed().as_secs_f64();
        row(&mut table, "csr", csr_s, csr.memory_bytes(), num_arcs, num_edges);

        // The backends must agree before their sizes are comparable.
        assert_eq!(g.num_edges() as u64, num_edges, "backends must store the same graph");
    }

    table.emit(args.csv.as_ref());
    println!(
        "\nsuccessor structure: {:.2} bytes/arc (target ≤ 4; CSR stores 8 — a u32 target",
        compressed.data_bytes() as f64 / num_arcs.max(1) as f64
    );
    println!("plus a u32 weight — per arc). The offset index (Elias-Fano) adds");
    println!(
        "{:.2} bytes/vertex on top.",
        compressed.index_bytes() as f64 / args.scale.max(1) as f64
    );
}
