//! The CI perf gate: diffs a candidate RunReport against a baseline and
//! exits nonzero when a gated (deterministic) metric regressed past its
//! threshold.
//!
//! ```text
//! usage: perfgate <candidate.json> <baseline.json>
//!                 [--threshold 0.10] [--override metric=thr]...
//! ```
//!
//! Exit codes: 0 = no regression, 1 = regression, 2 = usage / IO / parse /
//! scenario-mismatch errors.
//!
//! Gated metrics are exact functions of (scenario, seed, code): simulated
//! communication time, message/byte counts, step counts and the final
//! convergence error. Measured metrics (compute/wall time) appear in the
//! table for humans but never fail the gate — CI hosts are noisy.

use aaa_bench::Table;
use aaa_observe::{compare, regressed, GateConfig, MetricDiff, RunReport};

fn usage() -> ! {
    eprintln!(
        "usage: perfgate <candidate.json> <baseline.json> \
         [--threshold 0.10] [--override metric=thr]..."
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("perfgate: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> RunReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    RunReport::from_json_str(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

fn fmt_change(d: &MetricDiff) -> String {
    if d.rel_change.is_infinite() {
        "+inf".into()
    } else {
        format!("{:+.2}%", d.rel_change * 100.0)
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut cfg = GateConfig::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threshold" => {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage());
                cfg.default_threshold =
                    v.parse().unwrap_or_else(|_| fail("--threshold wants a number"));
            }
            "--override" => {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage());
                let (name, thr) =
                    v.split_once('=').unwrap_or_else(|| fail("--override wants metric=threshold"));
                let thr: f64 =
                    thr.parse().unwrap_or_else(|_| fail("--override wants metric=threshold"));
                cfg.overrides.push((name.to_string(), thr));
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => fail(&format!("unknown flag {flag}")),
            path => paths.push(path),
        }
        i += 1;
    }
    let [candidate_path, baseline_path] = paths[..] else { usage() };
    let candidate = load(candidate_path);
    let baseline = load(baseline_path);
    if candidate.scenario != baseline.scenario {
        fail(&format!(
            "scenario mismatch: candidate ran {:?} but baseline is {:?} — not comparable",
            candidate.scenario, baseline.scenario
        ));
    }

    let rows = compare(&candidate, &baseline, &cfg);
    let mut table = Table::new(
        format!(
            "perfgate: {} (threshold {:.0}%)",
            candidate.scenario,
            cfg.default_threshold * 100.0
        ),
        &["metric", "baseline", "candidate", "change", "threshold", "verdict"],
    );
    for d in &rows {
        let verdict = if d.regressed {
            "REGRESSED"
        } else if !d.gated {
            "info"
        } else {
            "ok"
        };
        let threshold = if d.gated { format!("{:.0}%", d.threshold * 100.0) } else { "—".into() };
        table.row(vec![
            d.name.to_string(),
            fmt_value(d.baseline),
            fmt_value(d.candidate),
            fmt_change(d),
            threshold,
            verdict.to_string(),
        ]);
    }
    table.emit(None);

    if regressed(&rows) {
        let worst: Vec<&str> = rows.iter().filter(|d| d.regressed).map(|d| d.name).collect();
        eprintln!("\nperfgate: FAIL — regressed metrics: {}", worst.join(", "));
        std::process::exit(1);
    }
    println!("\nperfgate: OK — no gated metric regressed");
}
