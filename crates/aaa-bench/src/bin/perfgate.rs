//! The CI perf gate: diffs a candidate RunReport against a baseline and
//! exits nonzero when a gated (deterministic) metric regressed past its
//! threshold.
//!
//! ```text
//! usage: perfgate <candidate.json> <baseline.json>
//!                 [--threshold 0.10] [--override metric=thr]...
//!        perfgate <candidate.json> --write-baseline <path>
//!        perfgate --validate <file-or-dir>...
//! ```
//!
//! `--write-baseline` re-serializes the candidate through the current
//! `RunReport` codec and writes it to `path` — the one sanctioned way to
//! refresh a committed baseline (a report that does not round-trip never
//! becomes a baseline). `--validate` parses every given report (or every
//! `.json` inside a given directory) as a current-version `RunReport` and
//! fails if any is stale or malformed — CI runs it over
//! `results/baselines/` so format changes can never silently orphan a
//! committed baseline.
//!
//! Exit codes: 0 = no regression, 1 = regression, 2 = usage / IO / parse /
//! scenario-mismatch errors.
//!
//! Gated metrics are exact functions of (scenario, seed, code): simulated
//! communication time, message/byte counts, step counts and the final
//! convergence error. Measured metrics (compute/wall time) appear in the
//! table for humans but never fail the gate — CI hosts are noisy.

use aaa_bench::Table;
use aaa_observe::{compare, regressed, GateConfig, MetricDiff, RunReport};

fn usage() -> ! {
    eprintln!(
        "usage: perfgate <candidate.json> <baseline.json> \
         [--threshold 0.10] [--override metric=thr]...\n\
         \x20      perfgate <candidate.json> --write-baseline <path>\n\
         \x20      perfgate --validate <file-or-dir>..."
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("perfgate: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> RunReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    RunReport::from_json_str(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

fn fmt_change(d: &MetricDiff) -> String {
    if d.rel_change.is_infinite() {
        "+inf".into()
    } else {
        format!("{:+.2}%", d.rel_change * 100.0)
    }
}

/// `--validate`: every argument is a report file or a directory whose
/// `.json` entries are reports; each must parse as a current-version
/// [`RunReport`].
fn validate(paths: &[&str]) -> ! {
    if paths.is_empty() {
        fail("--validate wants at least one file or directory");
    }
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for p in paths {
        let path = std::path::Path::new(p);
        if path.is_dir() {
            let entries =
                std::fs::read_dir(path).unwrap_or_else(|e| fail(&format!("cannot list {p}: {e}")));
            for entry in entries {
                let entry = entry.unwrap_or_else(|e| fail(&format!("cannot list {p}: {e}")));
                if entry.path().extension().is_some_and(|x| x == "json") {
                    files.push(entry.path());
                }
            }
        } else {
            files.push(path.to_path_buf());
        }
    }
    if files.is_empty() {
        fail("--validate found no .json reports to check");
    }
    files.sort();
    let mut bad = 0usize;
    for f in &files {
        let shown = f.display();
        match std::fs::read_to_string(f).map_err(|e| e.to_string()).and_then(|text| {
            RunReport::from_json_str(&text).map(|r| r.scenario).map_err(|e| e.to_string())
        }) {
            Ok(scenario) => println!("perfgate: {shown}: ok ({scenario})"),
            Err(e) => {
                eprintln!("perfgate: {shown}: INVALID — {e}");
                bad += 1;
            }
        }
    }
    if bad > 0 {
        eprintln!("perfgate: {bad}/{} baseline reports failed validation", files.len());
        std::process::exit(2);
    }
    println!("perfgate: all {} baseline reports parse as current-version RunReport", files.len());
    std::process::exit(0);
}

/// `--write-baseline`: round-trip the candidate through the current codec
/// and write the canonical serialization to `dest`.
fn write_baseline(candidate_path: &str, dest: &str) -> ! {
    let report = load(candidate_path);
    std::fs::write(dest, report.to_json_string())
        .unwrap_or_else(|e| fail(&format!("cannot write {dest}: {e}")));
    println!("perfgate: baseline for {:?} written to {dest}", report.scenario);
    std::process::exit(0);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut cfg = GateConfig::default();
    let mut baseline_dest: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--validate" => {
                let rest: Vec<&str> = argv[i + 1..].iter().map(String::as_str).collect();
                validate(&rest);
            }
            "--write-baseline" => {
                i += 1;
                baseline_dest = Some(argv.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--threshold" => {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage());
                cfg.default_threshold =
                    v.parse().unwrap_or_else(|_| fail("--threshold wants a number"));
            }
            "--override" => {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage());
                let (name, thr) =
                    v.split_once('=').unwrap_or_else(|| fail("--override wants metric=threshold"));
                let thr: f64 =
                    thr.parse().unwrap_or_else(|_| fail("--override wants metric=threshold"));
                cfg.overrides.push((name.to_string(), thr));
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => fail(&format!("unknown flag {flag}")),
            path => paths.push(path),
        }
        i += 1;
    }
    if let Some(dest) = baseline_dest {
        let [candidate_path] = paths[..] else { usage() };
        write_baseline(candidate_path, &dest);
    }
    let [candidate_path, baseline_path] = paths[..] else { usage() };
    let candidate = load(candidate_path);
    let baseline = load(baseline_path);
    if candidate.scenario != baseline.scenario {
        fail(&format!(
            "scenario mismatch: candidate ran {:?} but baseline is {:?} — not comparable",
            candidate.scenario, baseline.scenario
        ));
    }

    let rows = compare(&candidate, &baseline, &cfg);
    let mut table = Table::new(
        format!(
            "perfgate: {} (threshold {:.0}%)",
            candidate.scenario,
            cfg.default_threshold * 100.0
        ),
        &["metric", "baseline", "candidate", "change", "threshold", "verdict"],
    );
    for d in &rows {
        let verdict = if d.regressed {
            "REGRESSED"
        } else if !d.gated {
            "info"
        } else {
            "ok"
        };
        let threshold = if d.gated { format!("{:.0}%", d.threshold * 100.0) } else { "—".into() };
        table.row(vec![
            d.name.to_string(),
            fmt_value(d.baseline),
            fmt_value(d.candidate),
            fmt_change(d),
            threshold,
            verdict.to_string(),
        ]);
    }
    table.emit(None);

    if regressed(&rows) {
        let worst: Vec<&str> = rows.iter().filter(|d| d.regressed).map(|d| d.name).collect();
        eprintln!("\nperfgate: FAIL — regressed metrics: {}", worst.join(", "));
        std::process::exit(1);
    }
    println!("\nperfgate: OK — no gated metric regressed");
}
