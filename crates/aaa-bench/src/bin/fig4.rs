//! Reproduces Figure 4: Baseline Restart vs. Anytime Anywhere
//! (RoundRobin-PS) for 512 (scaled) vertex additions injected at RC0, RC4
//! and RC8.

use aaa_bench::{experiments, observe, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    observe::maybe_observe("fig4", &args);
    experiments::fig4(&args).emit(args.csv.as_ref());
    println!("\nExpected shape (paper): anytime anywhere is several times cheaper than");
    println!("the restart baseline at every injection point; the baseline is flat in");
    println!("the injection step while the anytime cost grows mildly with later steps.");
}
