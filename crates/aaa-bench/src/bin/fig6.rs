//! Reproduces Figure 6: vertex additions at recombination step 8 (RC8) —
//! the late-injection variant of Figure 5.

use aaa_bench::{experiments, observe, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    observe::maybe_observe("fig6", &args);
    experiments::single_step_additions(&args, 8).emit(args.csv.as_ref());
    println!("\nExpected shape (paper): same ordering as Figure 5 — the incremental");
    println!("strategies win small batches, Repartition-S wins large ones.");
}
