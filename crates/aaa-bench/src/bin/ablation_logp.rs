//! Ablation: LogP network parameters, exchange schedule (the paper's
//! serialized all-to-all vs pairwise rounds) and message cap M.

use aaa_bench::{experiments, observe, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    observe::maybe_observe("ablation_logp", &args);
    experiments::ablation_logp(&args).emit(args.csv.as_ref());
}
