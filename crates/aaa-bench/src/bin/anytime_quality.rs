//! Extra experiment: the anytime property in numbers — closeness error and
//! top-k recall per RC step (monotone improvement; asserts monotonicity).

use aaa_bench::{experiments, observe, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    observe::maybe_observe("anytime_quality", &args);
    experiments::anytime_quality(&args).emit(args.csv.as_ref());
    println!("\nError must decrease monotonically (asserted); recall reaches 1.0 at");
    println!("convergence — the §III anytime guarantee.");
}
