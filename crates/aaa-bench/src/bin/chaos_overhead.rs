//! Measures chaos-tolerance overhead: traffic, injected faults, repair
//! retransmissions, and simulated-time amplification while the supervised
//! loop converges the base graph under increasing seeded fault rates.

use aaa_bench::{experiments, observe, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    observe::maybe_observe("chaos_overhead", &args);
    experiments::chaos_overhead(&args).emit(args.csv.as_ref());
    println!("\nFaults stop at a finite superstep horizon (partial synchrony), so every");
    println!("row reconverges to the clean fixed point; the overhead column is the price");
    println!("of the retries, verification resends, and simulated backoff that got it");
    println!("there. Rate 0.00 doubles as the zero-cost check: its counters must be 0.");
}
