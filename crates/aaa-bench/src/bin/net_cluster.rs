//! Real multi-process cluster: coordinator + worker OS processes over
//! TCP, with fault injection, failure detection, and supervised recovery.
//!
//! The binary re-enters itself: the coordinator spawns `--procs` copies
//! of this executable with `--role worker`, each of which dials back in
//! and follows the `NetMsg` protocol until told to shut down.
//!
//! ```text
//! net_cluster --role coordinator [--scale N] [--procs P] [--seed S]
//!             [--wire full|delta] [--chaos seed:rate[:horizon]]
//!             [--kill R@ROUND] [--max-revivals N] [--checkpoint-every N]
//! ```
//!
//! `--kill R@ROUND` arms rank R's first process with `DieAtRound`: it
//! hard-exits (code 137) on the coordinator's `Produce` for that round.
//! The supervisor detects the death, respawns the rank with a fresh
//! session, re-initializes it, seeds it from the latest checkpoint, and
//! the cluster resumes — converging to the *same bits* the in-process
//! engine computes, which this binary verifies against its own oracle.
//!
//! Exit codes: 0 = converged and bit-identical to the oracle;
//! 2 = degraded but the certified bounds cover the exact answer;
//! 1 = anything worse. Output is one machine-readable line:
//! `CONVERGED match=true ...` or `DEGRADED certified=true ...`.

use aaa_bench::net::{DieAtRound, ProcessSupervisor, WorkerSpec};
use aaa_core::{
    run_worker, AnytimeEngine, EngineConfig, NetConfig, NetOutcome, NetRunner, WireFormat,
};
use aaa_graph::generators::{barabasi_albert, WeightModel};
use aaa_runtime::{read_hello, Backoff, Hello, NetChaos, SocketTransport};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Args {
    role: String,
    scale: usize,
    procs: usize,
    seed: u64,
    wire: WireFormat,
    chaos: Option<String>,
    kill: Option<(usize, u64)>,
    max_revivals: u32,
    checkpoint_every: u64,
    // Worker-only.
    addr: String,
    rank: u32,
    session: u64,
    die_at_round: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            role: "coordinator".to_string(),
            scale: 180,
            procs: 4,
            seed: 42,
            wire: WireFormat::Full,
            chaos: None,
            kill: None,
            max_revivals: 3,
            checkpoint_every: 2,
            addr: String::new(),
            rank: 0,
            session: 0,
            die_at_round: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--role" => args.role = val()?,
            "--scale" => args.scale = val()?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--procs" => args.procs = val()?.parse().map_err(|e| format!("--procs: {e}"))?,
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--wire" => {
                args.wire = match val()?.as_str() {
                    "full" => WireFormat::Full,
                    "delta" => WireFormat::Delta,
                    other => return Err(format!("--wire: unknown format {other}")),
                }
            }
            "--chaos" => args.chaos = Some(val()?),
            "--kill" => {
                let spec = val()?;
                let (rank, round) = spec
                    .split_once('@')
                    .ok_or_else(|| format!("--kill: want R@ROUND, got {spec}"))?;
                args.kill = Some((
                    rank.parse().map_err(|e| format!("--kill rank: {e}"))?,
                    round.parse().map_err(|e| format!("--kill round: {e}"))?,
                ));
            }
            "--max-revivals" => {
                args.max_revivals = val()?.parse().map_err(|e| format!("--max-revivals: {e}"))?
            }
            "--checkpoint-every" => {
                args.checkpoint_every =
                    val()?.parse().map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--addr" => args.addr = val()?,
            "--rank" => args.rank = val()?.parse().map_err(|e| format!("--rank: {e}"))?,
            "--session" => args.session = val()?.parse().map_err(|e| format!("--session: {e}"))?,
            "--die-at-round" => {
                args.die_at_round =
                    Some(val()?.parse().map_err(|e| format!("--die-at-round: {e}"))?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// `seed:rate[:horizon]` → a seeded [`NetChaos`] (horizon defaults to 200
/// frames per lane).
fn parse_chaos(spec: &str) -> Result<NetChaos, String> {
    let mut parts = spec.split(':');
    let seed: u64 =
        parts.next().unwrap_or_default().parse().map_err(|e| format!("chaos seed: {e}"))?;
    let rate: f64 = parts
        .next()
        .ok_or("chaos: want seed:rate")?
        .parse()
        .map_err(|e| format!("chaos rate: {e}"))?;
    let horizon: u64 = match parts.next() {
        Some(h) => h.parse().map_err(|e| format!("chaos horizon: {e}"))?,
        None => 200,
    };
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("chaos rate {rate} outside [0, 1]"));
    }
    Ok(NetChaos::seeded(seed, rate, horizon))
}

fn worker_main(args: &Args) -> Result<(), String> {
    let chaos = match &args.chaos {
        Some(spec) => parse_chaos(spec)?,
        None => NetChaos::none(),
    };
    let hello = Hello { rank: args.rank, session: args.session, last_recv: 0 };
    let link = SocketTransport::dial(
        &args.addr,
        hello,
        chaos,
        Backoff { seed: args.seed ^ args.session, ..Backoff::default() },
        40,
        Duration::from_secs(10),
    )
    .map_err(|e| format!("dial: {e}"))?;
    let idle = Duration::from_secs(60);
    let outcome = match args.die_at_round {
        Some(round) => run_worker(&mut DieAtRound { inner: link, round }, idle),
        None => {
            let mut link = link;
            run_worker(&mut link, idle)
        }
    };
    outcome.map_err(|e| format!("worker rank {}: {e}", args.rank))
}

fn coordinator_main(args: &Args) -> Result<ExitCode, String> {
    let chaos = match &args.chaos {
        Some(spec) => parse_chaos(spec)?,
        None => NetChaos::none(),
    };
    // The oracle: the in-process engine's fixed point. Also yields the
    // partition the workers will mirror.
    let graph =
        barabasi_albert(args.scale, 2, WeightModel::UniformRange { lo: 1, hi: 4 }, args.seed)
            .map_err(|e| format!("graph: {e}"))?;
    let mut engine = AnytimeEngine::new(graph.clone(), EngineConfig::deterministic(args.procs))
        .map_err(|e| format!("engine: {e}"))?;
    let owner = engine.partition().assignment().to_vec();
    engine.run_to_convergence();
    let oracle = engine.closeness();

    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?.to_string();
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let spec = WorkerSpec { exe, addr, chaos_arg: args.chaos.clone() };

    // First generation: session = rank + 1; the doomed rank (if any) gets
    // its DieAtRound fuse.
    let mut children = Vec::with_capacity(args.procs);
    let mut sessions = Vec::with_capacity(args.procs);
    for rank in 0..args.procs {
        let session = rank as u64 + 1;
        let die = args.kill.and_then(|(r, round)| (r == rank).then_some(round));
        children.push(spec.spawn(rank, session, die).map_err(|e| format!("spawn: {e}"))?);
        sessions.push(session);
    }

    // Accept the first dial from every rank.
    let mut slots: Vec<Option<SocketTransport>> = (0..args.procs).map(|_| None).collect();
    while slots.iter().any(Option::is_none) {
        let (mut stream, _) = listener.accept().map_err(|e| format!("accept: {e}"))?;
        let hello =
            read_hello(&mut stream, Duration::from_secs(10)).map_err(|e| format!("hello: {e}"))?;
        let rank = hello.rank as usize;
        if rank >= args.procs || hello.session != sessions[rank] {
            continue;
        }
        slots[rank] = Some(
            SocketTransport::accept(stream, hello, chaos).map_err(|e| format!("handshake: {e}"))?,
        );
    }
    let links: Vec<SocketTransport> = slots.into_iter().map(Option::unwrap).collect();

    let config = NetConfig {
        wire: args.wire,
        max_revivals: args.max_revivals,
        checkpoint_every: args.checkpoint_every,
        probe_deadline: Duration::from_millis(500),
        ..NetConfig::default()
    };

    let mut supervisor = ProcessSupervisor::new(listener, spec, chaos, children, sessions);
    let mut runner = NetRunner::new(&graph, owner, links, config);
    let outcome = match runner.init(&mut supervisor) {
        Ok(()) => runner.run(&mut supervisor),
        Err(out) => out,
    };
    runner.shutdown();

    match outcome {
        NetOutcome::Converged(summary) => {
            let matches = summary.closeness.len() == oracle.len()
                && summary.closeness.iter().zip(&oracle).all(|(a, b)| a.to_bits() == b.to_bits());
            println!(
                "CONVERGED match={matches} rounds={} recoveries={} probes_survived={}",
                summary.rounds, summary.recoveries, summary.probes_survived
            );
            Ok(if matches { ExitCode::SUCCESS } else { ExitCode::from(1) })
        }
        NetOutcome::Degraded(report) => {
            let certified = report.certifies(&oracle);
            println!(
                "DEGRADED certified={certified} reason={:?} rc_steps={}",
                report.reason, report.rc_steps
            );
            Ok(if certified { ExitCode::from(2) } else { ExitCode::from(1) })
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("net_cluster: {e}");
            return ExitCode::from(1);
        }
    };
    match args.role.as_str() {
        "worker" => match worker_main(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("net_cluster worker: {e}");
                ExitCode::from(1)
            }
        },
        "coordinator" => match coordinator_main(&args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("net_cluster: {e}");
                ExitCode::from(1)
            }
        },
        other => {
            eprintln!("net_cluster: unknown role {other}");
            ExitCode::from(1)
        }
    }
}
