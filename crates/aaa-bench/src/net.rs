//! Multi-process cluster harness: worker processes over real sockets,
//! supervised by the coordinator.
//!
//! The cross-transport tests in `tests/net_transport.rs` exercise the
//! socket stack with worker *threads*; this module supplies the missing
//! process pieces for the `net_cluster` binary and its end-to-end kill
//! tests:
//!
//! * [`ProcessSupervisor`] — a [`WorkerSupervisor`] whose revive ladder
//!   operates on OS processes: a dead child is respawned (fresh session →
//!   `Revive::Respawned`, coordinator re-inits and seeds it from the
//!   latest checkpoint), a live child that redials is rebound in place
//!   (same session → `Revive::Healed`), and a live child that stays
//!   silent past the deadline is killed and respawned.
//! * [`DieAtRound`] — a transport wrapper that hard-exits the worker
//!   process (exit code 137, mimicking `SIGKILL`) the moment it sees the
//!   coordinator's `Produce` for a configured round. This makes process
//!   death a *deterministic, driver-chosen* event: the test names the
//!   round, not a sleep.
//!
//! Sessions distinguish a reconnecting worker from a respawned one: every
//! spawn gets a fresh session id (carried in its [`Hello`]), so the
//! supervisor can tell "same process, new socket" (replay resumes) from
//! "new process" (sequence state must reset).

use aaa_core::{NetMsg, Revive, WorkerSupervisor};
use aaa_runtime::{read_hello, Frame, FrameKind, NetChaos, NetError, SocketTransport, Transport};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How to (re)spawn one worker process of the cluster.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Executable to run (normally `current_exe()` — the binary re-enters
    /// itself with `--role worker`).
    pub exe: PathBuf,
    /// Coordinator listen address the worker dials.
    pub addr: String,
    /// `seed:rate[:horizon]` chaos argument forwarded to workers, if any.
    pub chaos_arg: Option<String>,
}

impl WorkerSpec {
    /// Spawns one worker process. `die_at_round` arms [`DieAtRound`]
    /// inside the child; respawned replacements never inherit it.
    pub fn spawn(
        &self,
        rank: usize,
        session: u64,
        die_at_round: Option<u64>,
    ) -> std::io::Result<Child> {
        let mut cmd = Command::new(&self.exe);
        cmd.arg("--role")
            .arg("worker")
            .arg("--addr")
            .arg(&self.addr)
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--session")
            .arg(session.to_string())
            .stdin(Stdio::null());
        if let Some(chaos) = &self.chaos_arg {
            cmd.arg("--chaos").arg(chaos);
        }
        if let Some(round) = die_at_round {
            cmd.arg("--die-at-round").arg(round.to_string());
        }
        cmd.spawn()
    }
}

/// Supervises worker *processes*: the revive ladder can respawn them.
pub struct ProcessSupervisor {
    pub listener: TcpListener,
    pub spec: WorkerSpec,
    pub chaos: NetChaos,
    /// One child handle per rank.
    pub children: Vec<Child>,
    /// Session id each rank's current process announced.
    pub sessions: Vec<u64>,
    /// Next fresh session id for a respawn.
    next_session: u64,
    /// How long to wait for a (re)dial before escalating.
    pub accept_deadline: Duration,
}

impl ProcessSupervisor {
    pub fn new(
        listener: TcpListener,
        spec: WorkerSpec,
        chaos: NetChaos,
        children: Vec<Child>,
        sessions: Vec<u64>,
    ) -> Self {
        let next_session = sessions.iter().copied().max().unwrap_or(0) + 1;
        Self {
            listener,
            spec,
            chaos,
            children,
            sessions,
            next_session,
            accept_deadline: Duration::from_secs(15),
        }
    }

    fn fresh_session(&mut self) -> u64 {
        let s = self.next_session;
        self.next_session += 1;
        s
    }

    /// Polls the shared listener until the awaited rank dials in (any
    /// other rank's redial mid-crisis is dropped — it will redial again),
    /// or the deadline passes.
    fn wait_for_dial(
        &mut self,
        rank: usize,
        link: &mut SocketTransport,
        expect_new: Option<u64>,
        deadline: Duration,
    ) -> Option<Revive<SocketTransport>> {
        self.listener.set_nonblocking(true).ok()?;
        let until = Instant::now() + deadline;
        while Instant::now() < until {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false).ok();
                    let hello = match read_hello(&mut stream, Duration::from_secs(5)) {
                        Ok(h) => h,
                        Err(_) => continue,
                    };
                    if hello.rank as usize != rank {
                        continue;
                    }
                    match expect_new {
                        Some(session) if hello.session == session => {
                            match SocketTransport::accept(stream, hello, self.chaos) {
                                Ok(fresh) => {
                                    self.sessions[rank] = session;
                                    return Some(Revive::Respawned(fresh));
                                }
                                Err(_) => continue,
                            }
                        }
                        None if hello.session == self.sessions[rank] => {
                            if link.rebind(stream, hello).is_ok() {
                                return Some(Revive::Healed);
                            }
                            continue;
                        }
                        // A zombie dial from a session that no longer
                        // exists (e.g. the killed process's backlog).
                        _ => continue,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return Some(Revive::Gone),
            }
        }
        None
    }

    /// Replaces the child for `rank` with a fresh spawn and returns the
    /// new session id it will announce.
    fn respawn(&mut self, rank: usize) -> Option<u64> {
        let session = self.fresh_session();
        match self.spec.spawn(rank, session, None) {
            Ok(child) => {
                self.children[rank] = child;
                Some(session)
            }
            Err(_) => None,
        }
    }
}

impl WorkerSupervisor<SocketTransport> for ProcessSupervisor {
    fn revive(
        &mut self,
        rank: usize,
        link: &mut SocketTransport,
        _attempt: u32,
    ) -> Revive<SocketTransport> {
        // Reap first: a process that died (crash, kill, DieAtRound) needs
        // a replacement before anything can dial back in.
        let exited = matches!(self.children[rank].try_wait(), Ok(Some(_)));
        if exited {
            let Some(session) = self.respawn(rank) else {
                return Revive::Gone;
            };
            let deadline = self.accept_deadline;
            return self.wait_for_dial(rank, link, Some(session), deadline).unwrap_or(Revive::Gone);
        }
        // The process is alive: give it half the window to redial the
        // broken link, then treat it as wedged — kill and respawn.
        let half = self.accept_deadline / 2;
        if let Some(outcome) = self.wait_for_dial(rank, link, None, half) {
            return outcome;
        }
        self.children[rank].kill().ok();
        self.children[rank].wait().ok();
        let Some(session) = self.respawn(rank) else {
            return Revive::Gone;
        };
        let deadline = self.accept_deadline;
        self.wait_for_dial(rank, link, Some(session), deadline).unwrap_or(Revive::Gone)
    }
}

impl Drop for ProcessSupervisor {
    fn drop(&mut self) {
        // No orphans: whatever happens to the run, the children die with
        // the supervisor. Workers that already exited reap cleanly.
        for child in &mut self.children {
            child.kill().ok();
            child.wait().ok();
        }
    }
}

/// Transport wrapper that terminates the whole process (exit code 137,
/// the `SIGKILL` convention) when the coordinator's `Produce` for
/// `round` arrives — a deterministic stand-in for an OS-level kill.
pub struct DieAtRound<T: Transport> {
    pub inner: T,
    pub round: u64,
}

impl<T: Transport> Transport for DieAtRound<T> {
    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> Result<u64, NetError> {
        self.inner.send(kind, payload)
    }

    fn recv(&mut self, deadline: Option<Duration>) -> Result<Frame, NetError> {
        let frame = self.inner.recv(deadline)?;
        if frame.kind == FrameKind::Data {
            if let Ok(NetMsg::Produce { round }) = NetMsg::decode(&frame.payload) {
                if round >= self.round {
                    // Flush nothing, say nothing: a real crash is silent.
                    std::process::exit(137);
                }
            }
        }
        Ok(frame)
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }
}
