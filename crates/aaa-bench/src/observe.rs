//! The pinned **observed scenario**: one fully deterministic, instrumented
//! engine run that every figure binary can emit as a [`RunReport`] and/or
//! Chrome trace via `--report` / `--trace`.
//!
//! The scenario is deliberately *sequential* (bit-deterministic execution
//! mode) and fixed in shape — construction, a few RC steps, a dynamic
//! vertex-addition batch, one checkpoint, then convergence with quality
//! sampling — so two runs of the same tree produce byte-identical gated
//! metrics. That determinism is what lets CI diff a fresh report against
//! the checked-in baseline (`results/baselines/ci_smoke.json`) with the
//! `perfgate` binary and treat any drift in simulated cost or traffic as a
//! real behavioral change.

use crate::experiments::{addition_batch, base_graph};
use crate::{CommonArgs, StoreBackend};
use aaa_core::quality::QualityTracker;
use aaa_core::{AnytimeEngine, AssignStrategy, EngineConfig, MemorySink, MetricKind, WireFormat};
use aaa_observe::{
    aggregate_phases, chrome_trace, per_rank_busy, ChangeTally, MetricsTally, QualityPoint,
    RunReport,
};
use std::sync::Arc;

/// RC steps run before the dynamic batch is injected.
const STEPS_BEFORE_BATCH: usize = 4;

/// Suffixes the pinned scenario name when extra metrics are enabled, so
/// each metric set gates against its own committed baseline (`perfgate`
/// refuses to compare reports from different scenarios).
fn metrics_suffix(name: &mut String, args: &CommonArgs) {
    if args.metrics.contains(&MetricKind::Betweenness) {
        name.push_str(":betweenness");
    }
}

/// The report's optional `metrics` section: the incremental-betweenness
/// effort tally, present exactly when the engine maintained the metric.
/// Every field is an exact function of the pinned change stream, so the
/// perf gate diffs them under the both-present rule.
fn metrics_tally(engine: &AnytimeEngine) -> Option<MetricsTally> {
    engine.metric_tally(MetricKind::Betweenness).map(|t| MetricsTally {
        betweenness_epochs: t.epochs,
        sources_recomputed: t.sources_recomputed,
        full_recomputes: t.full_recomputes,
        changed_entries: t.changed_entries,
    })
}

/// If `--report` or `--trace` was given, runs the pinned observed scenario
/// named `<scenario>:pinned` and writes the requested artifacts. A no-op
/// otherwise.
pub fn maybe_observe(scenario: &str, args: &CommonArgs) {
    if args.report.is_none() && args.trace.is_none() {
        return;
    }
    let (report, trace) = observed_run(scenario, args);
    if let Some(path) = &args.report {
        std::fs::write(path, report.to_json_string()).expect("report write");
        println!("(run report written to {})", path.display());
    }
    if let Some(path) = &args.trace {
        std::fs::write(path, trace).expect("trace write");
        println!("(chrome trace written to {})", path.display());
    }
}

/// Runs the pinned scenario and returns its report plus the rendered
/// Chrome trace. Fully deterministic in everything the perf gate checks:
/// sequential execution, seeded graph and batch, fixed step structure.
///
/// With `--store compressed` the graph first round-trips through the
/// compressed store (external-memory ingest with a deliberately tiny spill
/// budget) and domain decomposition runs on the compressed backend; the
/// scenario name gains a `:store=compressed` suffix so it gates against
/// its own committed baseline.
pub fn observed_run(scenario: &str, args: &CommonArgs) -> (RunReport, String) {
    let sink = Arc::new(MemorySink::new());
    let mut config = EngineConfig::deterministic(args.procs);
    config.wire = args.wire;
    config.metrics = args.metrics.clone();
    let g = base_graph(args);
    let mut engine = match args.store {
        StoreBackend::Plain => {
            AnytimeEngine::with_sink(g.clone(), config, sink.clone()).expect("engine construction")
        }
        StoreBackend::Compressed => {
            use aaa_partition::{MultilevelPartitioner, Partitioner};
            // External ingest: edges spill through a small budget, the
            // merged arc stream builds the compressed store, and the
            // multilevel partitioner runs directly on it. The partitioners
            // are backend-independent, so the assignment — and with it
            // every gated metric — is an exact function of the scenario.
            let dir = std::env::temp_dir().join(format!(
                "aaa-store-pinned-{}-{}",
                std::process::id(),
                args.seed
            ));
            let arcs = aaa_store::sort_edges(&dir, 1 << 16, g.edges()).expect("external ingest");
            let compressed =
                aaa_store::CompressedGraph::from_sorted_arcs(g.num_vertices(), false, arcs)
                    .expect("compressed build");
            let _ = std::fs::remove_dir_all(&dir);
            let part = MultilevelPartitioner::seeded(0)
                .partition(&compressed, args.procs)
                .expect("partition on compressed backend");
            let mut e = AnytimeEngine::with_partition(g.clone(), part, config)
                .expect("engine construction");
            e.set_sink(sink.clone());
            e
        }
    };

    // Phase 1: partial static convergence (the anytime prefix).
    for _ in 0..STEPS_BEFORE_BATCH {
        if !engine.rc_step() {
            break;
        }
    }

    // Phase 2: a dynamic vertex-addition batch lands mid-analysis.
    let batch = addition_batch(&g, args.scaled(512, 8), args.seed + 1);
    engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).expect("batch applies");

    // Phase 3: one checkpoint at the post-batch barrier (exercises the
    // Checkpoint span and counter).
    let _snapshot = engine.checkpoint_bytes().expect("checkpoint");

    // Phase 4: converge, sampling convergence quality per RC step. The
    // sampling uses `recompute_exact()` — the priced gather superstep the
    // scenario has always charged — so the pipeline split's unpriced
    // published-view reads leave every gated metric byte-identical.
    let mut tracker = QualityTracker::new(engine.graph(), 20);
    let mut quality: Vec<QualityPoint> = Vec::new();
    for _ in 0..256 {
        let more = engine.rc_step();
        let sample = tracker.record(engine.rc_steps_done(), &engine.recompute_exact());
        quality.push(QualityPoint {
            rc_step: sample.rc_step as u64,
            error: sample.error,
            top_k_recall: sample.top_k_recall,
        });
        if !more {
            break;
        }
    }

    let events = sink.drain();
    // Per-wire (and per-backend) scenario names: `perfgate` refuses to
    // compare reports from different scenarios, so each wire format and
    // storage backend gates against its own committed baseline.
    let mut name = match args.wire {
        WireFormat::Full => format!("{scenario}:pinned"),
        WireFormat::Delta => format!("{scenario}:pinned:wire=delta"),
    };
    if args.store == StoreBackend::Compressed {
        name.push_str(":store=compressed");
    }
    metrics_suffix(&mut name, args);
    let mut report = engine.stats().init_report(&name);
    report.scale = args.scale as u64;
    report.procs = args.procs as u64;
    report.seed = args.seed;
    report.rc_steps = engine.rc_steps_done() as u64;
    report.phases = aggregate_phases(&events);
    report.ranks = per_rank_busy(&events);
    report.quality = quality;
    let ingest = engine.ingest_stats();
    report.changes = Some(ChangeTally {
        submitted: ingest.submitted,
        coalesced: ingest.coalesced,
        applied: ingest.applied,
        drains: ingest.drains,
        epochs: engine.epochs_published(),
    });
    report.metrics = metrics_tally(&engine);
    let trace = chrome_trace(&events, args.procs);
    (report, trace)
}

/// Runs the pinned **serve scenario** — the ingest → compute → publish
/// pipeline under a seeded, coalescing change stream — and returns its
/// report (scenario `<name>:pinned:serve`) plus the rendered Chrome trace.
///
/// The stream is built so every coalescing rule fires deterministically:
/// two vertex batches with the same strategy fold into one, every added
/// edge is immediately reweighted (the reweight merges into the queued
/// add), and every third pair is removed again (add + remove annihilate
/// before ever reaching the compute layer). Everything drains at RC-step
/// barriers, so the report's `changes` section (submitted / coalesced /
/// applied / drains / epochs) is exactly reproducible and CI gates it
/// against `results/baselines/ci_smoke_serve.json`.
pub fn observed_serve_run(scenario: &str, args: &CommonArgs) -> (RunReport, String) {
    use aaa_core::DynamicChange;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    let sink = Arc::new(MemorySink::new());
    let mut config = EngineConfig::deterministic(args.procs);
    config.wire = args.wire;
    config.metrics = args.metrics.clone();
    let g = base_graph(args);
    let mut engine =
        AnytimeEngine::with_sink(g.clone(), config, sink.clone()).expect("engine construction");

    // Phase 1: partial static convergence (the anytime prefix).
    for _ in 0..STEPS_BEFORE_BATCH {
        if !engine.rc_step() {
            break;
        }
    }

    // Phase 2: the change stream lands in the ingest log. Batch B is built
    // against the graph as it will look once batch A applied (submitted
    // changes are interpreted against the projected graph), and folds into
    // the queued batch A since both pin the same strategy.
    let batch_a = addition_batch(&g, args.scaled(256, 6), args.seed + 1);
    let mut g_ext = g.clone();
    let base = g_ext.num_vertices() as u32;
    g_ext.add_vertices(batch_a.len());
    for (a, b, w) in batch_a.global_edges(base) {
        g_ext.add_edge(a, b, w).expect("batch validated");
    }
    let batch_b = addition_batch(&g_ext, args.scaled(128, 4), args.seed + 2);
    engine
        .submit_with_strategy(DynamicChange::AddVertices(batch_a), AssignStrategy::RoundRobin)
        .expect("batch A submits");
    engine
        .submit_with_strategy(DynamicChange::AddVertices(batch_b), AssignStrategy::RoundRobin)
        .expect("batch B folds into batch A");

    // Seeded edge churn over the original vertices: add + reweight pairs
    // merge in the log; every third pair is removed again and never
    // reaches compute.
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed + 3);
    let n = g.num_vertices() as u32;
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    while pairs.len() < 12 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || g.has_edge(u, v) || pairs.contains(&(u, v)) || pairs.contains(&(v, u)) {
            continue;
        }
        pairs.push((u, v));
    }
    for (i, &(u, v)) in pairs.iter().enumerate() {
        engine.submit(DynamicChange::AddEdge { u, v, w: 3 }).expect("edge add submits");
        engine.submit(DynamicChange::SetWeight { u, v, w: 1 }).expect("reweight merges");
        if i % 3 == 0 {
            engine.submit(DynamicChange::RemoveEdge { u, v }).expect("removal annihilates");
        }
    }

    // Phase 3: converge. The first RC step drains the whole stream at its
    // barrier; quality sampling uses the priced `recompute_exact` gather.
    let mut more = engine.rc_step();
    let mut tracker = QualityTracker::new(engine.graph(), 20);
    let mut quality: Vec<QualityPoint> = Vec::new();
    let sample = |engine: &mut AnytimeEngine,
                  tracker: &mut QualityTracker,
                  quality: &mut Vec<QualityPoint>| {
        let s = tracker.record(engine.rc_steps_done(), &engine.recompute_exact());
        quality.push(QualityPoint {
            rc_step: s.rc_step as u64,
            error: s.error,
            top_k_recall: s.top_k_recall,
        });
    };
    sample(&mut engine, &mut tracker, &mut quality);
    while more {
        more = engine.rc_step();
        sample(&mut engine, &mut tracker, &mut quality);
    }

    // Phase 4: a second, smaller wave mid-serving (reweights of surviving
    // pairs), drained explicitly this time, then re-converge — the report
    // counts two drains. The reweights change the graph's exact answer, so
    // quality sampling restarts on a fresh oracle.
    for &(u, v) in pairs.iter().skip(1).take(2) {
        engine.submit(DynamicChange::SetWeight { u, v, w: 2 }).expect("reweight submits");
    }
    engine.drain_changes().expect("wave 2 drains");
    let mut tracker = QualityTracker::new(engine.graph(), 20);
    let mut more = engine.rc_step();
    sample(&mut engine, &mut tracker, &mut quality);
    while more {
        more = engine.rc_step();
        sample(&mut engine, &mut tracker, &mut quality);
    }

    let events = sink.drain();
    let mut name = match args.wire {
        WireFormat::Full => format!("{scenario}:pinned:serve"),
        WireFormat::Delta => format!("{scenario}:pinned:serve:wire=delta"),
    };
    metrics_suffix(&mut name, args);
    let mut report = engine.stats().init_report(&name);
    report.scale = args.scale as u64;
    report.procs = args.procs as u64;
    report.seed = args.seed;
    report.rc_steps = engine.rc_steps_done() as u64;
    report.phases = aggregate_phases(&events);
    report.ranks = per_rank_busy(&events);
    report.quality = quality;
    let ingest = engine.ingest_stats();
    report.changes = Some(ChangeTally {
        submitted: ingest.submitted,
        coalesced: ingest.coalesced,
        applied: ingest.applied,
        drains: ingest.drains,
        epochs: engine.epochs_published(),
    });
    report.metrics = metrics_tally(&engine);
    let trace = chrome_trace(&events, args.procs);
    (report, trace)
}

/// Runs the pinned **publish scenario** — the delta publication path under
/// a change stream, with one forced O(n) republication mid-run so both
/// publish paths land in the tally — and returns its report (scenario
/// `<name>:pinned:publish`) plus the rendered Chrome trace.
///
/// The report carries the `publish` section (full vs. delta epochs,
/// changed rows, chunks copied vs. structurally shared, top-k index
/// rebuilds). Chunk-sharing decisions are an exact function of the change
/// stream — publication happens driver-side at barriers on drained
/// epoch-dirty sets — so every row is deterministic and CI gates it
/// against `results/baselines/ci_smoke_publish.json`.
pub fn observed_publish_run(scenario: &str, args: &CommonArgs) -> (RunReport, String) {
    use aaa_core::DynamicChange;
    use aaa_observe::PublishTally;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    let sink = Arc::new(MemorySink::new());
    let mut config = EngineConfig::deterministic(args.procs);
    config.wire = args.wire;
    config.metrics = args.metrics.clone();
    let g = base_graph(args);
    let mut engine =
        AnytimeEngine::with_sink(g.clone(), config, sink.clone()).expect("engine construction");

    // Phase 1: partial static convergence. Every epoch after the first
    // (full, at construction) publishes by delta.
    for _ in 0..STEPS_BEFORE_BATCH {
        if !engine.rc_step() {
            break;
        }
    }

    // Phase 2: a vertex-addition batch grows the view (tail chunk tops
    // up / fresh chunks materialize) plus seeded edge churn that dirties
    // scattered rows.
    let batch = addition_batch(&g, args.scaled(256, 6), args.seed + 1);
    engine
        .submit_with_strategy(DynamicChange::AddVertices(batch), AssignStrategy::RoundRobin)
        .expect("batch submits");
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed + 2);
    let n = g.num_vertices() as u32;
    let mut added: Vec<(u32, u32)> = Vec::new();
    while added.len() < 8 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) && !added.contains(&(u, v)) && !added.contains(&(v, u)) {
            engine.submit(DynamicChange::AddEdge { u, v, w: 2 }).expect("edge add submits");
            added.push((u, v));
        }
    }
    while engine.rc_step() {}

    // Phase 3: a reweight wave published through the forced O(n) full
    // path — the debug oracle CI keeps honest — then back to deltas for
    // the re-convergence tail.
    engine.set_force_full_publish(true);
    for &(u, v) in added.iter().take(4) {
        engine.submit(DynamicChange::SetWeight { u, v, w: 1 }).expect("reweight submits");
    }
    engine.drain_changes().expect("wave 2 drains");
    engine.set_force_full_publish(false);
    while engine.rc_step() {}

    let events = sink.drain();
    let mut name = match args.wire {
        WireFormat::Full => format!("{scenario}:pinned:publish"),
        WireFormat::Delta => format!("{scenario}:pinned:publish:wire=delta"),
    };
    metrics_suffix(&mut name, args);
    let mut report = engine.stats().init_report(&name);
    report.scale = args.scale as u64;
    report.procs = args.procs as u64;
    report.seed = args.seed;
    report.rc_steps = engine.rc_steps_done() as u64;
    report.phases = aggregate_phases(&events);
    report.ranks = per_rank_busy(&events);
    let ingest = engine.ingest_stats();
    report.changes = Some(ChangeTally {
        submitted: ingest.submitted,
        coalesced: ingest.coalesced,
        applied: ingest.applied,
        drains: ingest.drains,
        epochs: engine.epochs_published(),
    });
    let publish = engine.publish_stats();
    report.publish = Some(PublishTally {
        full_epochs: publish.full_epochs,
        delta_epochs: publish.delta_epochs,
        changed_rows: publish.changed_rows,
        chunks_copied: publish.chunks_copied,
        chunks_shared: publish.chunks_shared,
        topk_rebuilds: publish.topk_rebuilds,
    });
    report.metrics = metrics_tally(&engine);
    let trace = chrome_trace(&events, args.procs);
    (report, trace)
}

/// Runs the pinned **stream scenario** — the adversarial hub-targeting
/// change stream driven through the ingest log while the adaptive
/// background rebalancer absorbs the resulting skew — and returns its
/// report (scenario `<name>:pinned:stream`) plus the rendered Chrome
/// trace.
///
/// The report carries both new optional sections: `stream` (offered
/// batches, deterministic p99/max epoch staleness, peak queue depth and
/// the final vertex imbalance the rebalancer achieved) and `migration`
/// (events, rows moved, priced traffic). Everything except the
/// wall-derived `changes_per_sec` is an exact function of the scenario,
/// so CI gates it against `results/baselines/ci_smoke_stream.json`.
/// Measured-skew decisions stay off (`use_measured: false`) — the pinned
/// scenario must never branch on the wall clock.
pub fn observed_stream_run(scenario: &str, args: &CommonArgs) -> (RunReport, String) {
    use crate::stream::{drive_stream, StreamConfig, StreamShape};
    use aaa_core::{RebalanceConfig, RebalancePolicy};

    let sink = Arc::new(MemorySink::new());
    let mut config = EngineConfig::deterministic(args.procs);
    config.wire = args.wire;
    config.metrics = args.metrics.clone();
    config.rebalance = RebalanceConfig {
        every: 2,
        trigger: 1.05,
        ..RebalanceConfig::with_policy(args.policy.unwrap_or(RebalancePolicy::Adaptive))
    };
    let g = base_graph(args);
    let mut engine =
        AnytimeEngine::with_sink(g, config, sink.clone()).expect("engine construction");

    // Phase 1: partial static convergence (the anytime prefix).
    for _ in 0..STEPS_BEFORE_BATCH {
        if !engine.rc_step() {
            break;
        }
    }

    // Phase 2+3: the adversarial stream, stepped at half the offered
    // cadence, then tail drain and convergence (inside the driver).
    let stream = StreamConfig {
        shape: StreamShape::Hub,
        ticks: args.ticks.unwrap_or(24),
        batch: args.scaled(256, 4),
        edges_per_vertex: 2,
        seed: args.seed + 1,
    };
    let outcome = drive_stream(&mut engine, &stream);

    let events = sink.drain();
    let mut name = match args.wire {
        WireFormat::Full => format!("{scenario}:pinned:stream"),
        WireFormat::Delta => format!("{scenario}:pinned:stream:wire=delta"),
    };
    if args.store == StoreBackend::Compressed {
        name.push_str(":store=compressed");
    }
    metrics_suffix(&mut name, args);
    let mut report = engine.stats().init_report(&name);
    report.scale = args.scale as u64;
    report.procs = args.procs as u64;
    report.seed = args.seed;
    report.rc_steps = engine.rc_steps_done() as u64;
    report.phases = aggregate_phases(&events);
    report.ranks = per_rank_busy(&events);
    let ingest = engine.ingest_stats();
    report.changes = Some(ChangeTally {
        submitted: ingest.submitted,
        coalesced: ingest.coalesced,
        applied: ingest.applied,
        drains: ingest.drains,
        epochs: engine.epochs_published(),
    });
    report.stream = Some(outcome.tally());
    report.metrics = metrics_tally(&engine);
    let trace = chrome_trace(&events, args.procs);
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_args() -> CommonArgs {
        CommonArgs { scale: 120, procs: 3, seed: 7, ..CommonArgs::default() }
    }

    #[test]
    fn observed_run_is_deterministic_in_gated_metrics() {
        let args = small_args();
        let (a, _) = observed_run("unit", &args);
        let (b, _) = observed_run("unit", &args);
        assert_eq!(a.scenario, "unit:pinned");
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.sim_comm_us, b.sim_comm_us);
        assert_eq!(a.supersteps, b.supersteps);
        assert_eq!(a.collectives, b.collectives);
        assert_eq!(a.rc_steps, b.rc_steps);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.checkpoints, 1);
        assert!(a.rc_steps as usize > STEPS_BEFORE_BATCH);
        assert!(!a.phases.is_empty());
        assert!(a.ranks.len() >= args.procs, "every rank plus the driver recorded spans");
        let last = a.final_quality().expect("quality sampled");
        assert!(last.error < 1e-6, "converged run matches exact closeness");
    }

    #[test]
    fn observed_serve_run_is_deterministic_and_coalesces() {
        let args = small_args();
        let (a, _) = observed_serve_run("unit", &args);
        let (b, _) = observed_serve_run("unit", &args);
        assert_eq!(a.scenario, "unit:pinned:serve");
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.sim_comm_us, b.sim_comm_us);
        assert_eq!(a.supersteps, b.supersteps);
        assert_eq!(a.collectives, b.collectives);
        assert_eq!(a.rc_steps, b.rc_steps);
        assert_eq!(a.changes, b.changes);
        let tally = a.changes.expect("serve scenario records its change tally");
        assert!(tally.coalesced > 0, "batch fold + edge merges must coalesce");
        assert_eq!(tally.drains, 2, "one drain per convergence wave");
        assert_eq!(tally.submitted, tally.coalesced + tally.applied, "stream fully drained");
        assert!(tally.epochs > a.rc_steps, "construction + per-step + per-drain epochs");
        let last = a.final_quality().expect("quality sampled");
        assert!(last.error < 1e-6, "converged run matches exact closeness");
    }

    /// Routing the graph through the compressed store (external ingest +
    /// DD on the compressed backend) must not change a single gated
    /// metric: the backends yield identical sorted successor lists, so the
    /// partition — and everything downstream — is the same.
    #[test]
    fn compressed_store_scenario_matches_plain_gated_metrics() {
        let plain = small_args();
        let store = CommonArgs { store: crate::StoreBackend::Compressed, ..small_args() };
        let (a, _) = observed_run("unit", &plain);
        let (b, _) = observed_run("unit", &store);
        assert_eq!(b.scenario, "unit:pinned:store=compressed");
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.sim_comm_us, b.sim_comm_us);
        assert_eq!(a.supersteps, b.supersteps);
        assert_eq!(a.collectives, b.collectives);
        assert_eq!(a.rc_steps, b.rc_steps);
        assert_eq!(a.quality, b.quality);
    }

    /// The publish scenario must reproduce its whole gated surface — in
    /// particular the `publish` tally, whose chunk-sharing counters are a
    /// function of the change stream alone — and must exercise both
    /// publication paths.
    #[test]
    fn observed_publish_run_is_deterministic_and_uses_both_paths() {
        let args = small_args();
        let (a, _) = observed_publish_run("unit", &args);
        let (b, _) = observed_publish_run("unit", &args);
        assert_eq!(a.scenario, "unit:pinned:publish");
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.sim_comm_us, b.sim_comm_us);
        assert_eq!(a.supersteps, b.supersteps);
        assert_eq!(a.collectives, b.collectives);
        assert_eq!(a.rc_steps, b.rc_steps);
        assert_eq!(a.changes, b.changes);
        assert_eq!(a.publish, b.publish);
        let tally = a.publish.expect("publish tally");
        assert!(tally.full_epochs >= 2, "construction + forced-full wave");
        assert!(tally.delta_epochs > tally.full_epochs, "steady state publishes by delta");
        assert!(tally.changed_rows > 0, "the change stream dirties rows");
        assert_eq!(
            tally.full_epochs + tally.delta_epochs,
            a.changes.expect("change tally").epochs,
            "every published epoch is classified"
        );
    }

    /// The stream scenario's gated surface — traffic, steps, the change
    /// tally, the migration tally and the integer stream metrics — must
    /// be byte-reproducible; only `changes_per_sec` may differ.
    #[test]
    fn observed_stream_run_is_deterministic_and_migrates() {
        let args = CommonArgs { ticks: Some(10), ..small_args() };
        let (a, _) = observed_stream_run("unit", &args);
        let (b, _) = observed_stream_run("unit", &args);
        assert_eq!(a.scenario, "unit:pinned:stream");
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.sim_comm_us, b.sim_comm_us);
        assert_eq!(a.supersteps, b.supersteps);
        assert_eq!(a.collectives, b.collectives);
        assert_eq!(a.rc_steps, b.rc_steps);
        assert_eq!(a.changes, b.changes);
        assert_eq!(a.migration, b.migration);
        let (sa, sb) = (a.stream.expect("stream tally"), b.stream.expect("stream tally"));
        assert_eq!(sa.offered, sb.offered);
        assert_eq!(sa.ticks, sb.ticks);
        assert_eq!(sa.p99_staleness_epochs, sb.p99_staleness_epochs);
        assert_eq!(sa.max_staleness_epochs, sb.max_staleness_epochs);
        assert_eq!(sa.peak_queue, sb.peak_queue);
        assert_eq!(sa.final_imbalance_milli, sb.final_imbalance_milli);
        let migration = a.migration.expect("migration tally");
        assert!(migration.migrations > 0, "the adversarial stream must trigger migrations");
        assert!(migration.migration_bytes > 0, "migration traffic must be priced");
        assert!(sa.offered > 0 && sa.peak_queue > 0);
    }

    /// The betweenness cell must (a) reproduce its whole gated surface
    /// including the `metrics` tally, (b) leave the *closeness* gated
    /// metrics byte-identical to the closeness-only run (metric updates
    /// happen driver-side at publish barriers and are never priced), and
    /// (c) show the incremental path doing measurably less work than a
    /// full per-epoch rescan (`sources_recomputed` < n × update epochs).
    #[test]
    fn betweenness_scenario_is_deterministic_and_beats_rescan() {
        let base = small_args();
        let args = CommonArgs { metrics: vec![MetricKind::Betweenness], ..small_args() };
        let (plain, _) = observed_run("unit", &base);
        let (a, _) = observed_run("unit", &args);
        let (b, _) = observed_run("unit", &args);
        assert_eq!(a.scenario, "unit:pinned:betweenness");
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.sim_comm_us, b.sim_comm_us);
        assert_eq!(a.rc_steps, b.rc_steps);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.metrics, b.metrics);
        // Maintaining the extra column must not perturb the priced run.
        assert_eq!(a.messages, plain.messages);
        assert_eq!(a.bytes, plain.bytes);
        assert_eq!(a.sim_comm_us, plain.sim_comm_us);
        assert_eq!(a.rc_steps, plain.rc_steps);
        assert_eq!(a.quality, plain.quality);
        assert!(plain.metrics.is_none(), "closeness-only run carries no metrics section");
        let t = a.metrics.expect("betweenness run records its tally");
        assert!(t.betweenness_epochs > 0 && t.changed_entries > 0);
        assert!(t.full_recomputes >= 1, "the vertex batch drain forces a rebuild");
        let n = (args.scale + args.scaled(512, 8)) as u64;
        assert!(
            t.sources_recomputed < n * t.betweenness_epochs,
            "incremental updates must beat a per-epoch full rescan \
             ({} sources over {} epochs of n = {})",
            t.sources_recomputed,
            t.betweenness_epochs,
            n
        );
    }

    /// The pinned scenario includes a vertex-addition batch, so it is the
    /// incremental workload the delta wire targets: same converged answer,
    /// strictly fewer simulated bytes.
    #[test]
    fn delta_wire_reduces_bytes_and_converges() {
        let full_args = small_args();
        let delta_args = CommonArgs { wire: WireFormat::Delta, ..small_args() };
        let (full, _) = observed_run("unit", &full_args);
        let (delta, _) = observed_run("unit", &delta_args);
        assert_eq!(delta.scenario, "unit:pinned:wire=delta");
        assert!(
            delta.bytes < full.bytes,
            "delta wire must cut simulated bytes ({} vs {})",
            delta.bytes,
            full.bytes
        );
        assert!(delta.final_quality().expect("quality sampled").error < 1e-6);
    }
}
