//! End-to-end supervised recovery across real OS processes.
//!
//! These tests run the `net_cluster` binary, whose coordinator spawns
//! worker *processes* over TCP and verifies its own outcome against the
//! in-process engine's fixed point (the oracle):
//!
//! * a worker hard-killed mid-convergence (`--kill R@ROUND`, exit 137 on
//!   that round's `Produce`) must be detected, respawned with a fresh
//!   session, re-seeded from the checkpoint, and the cluster must still
//!   reach the oracle's bits — exit 0, `CONVERGED match=true`;
//! * with the revival budget exhausted (`--max-revivals 0`) the same
//!   kill must degrade the run into the certified-bounds answer — exit
//!   2, `DEGRADED certified=true` (the bound covers the exact oracle);
//! * under seeded socket chaos *plus* a kill, any run must end in one of
//!   those two certified states, never a wrong answer.

use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_net_cluster");

fn cluster(extra: &[&str]) -> Output {
    Command::new(BIN)
        .args(["--role", "coordinator", "--scale", "120", "--procs", "3", "--seed", "42"])
        .args(extra)
        .output()
        .expect("net_cluster spawns")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

#[test]
fn clean_cluster_converges_bit_identically() {
    let out = cluster(&[]);
    let text = stdout(&out);
    assert!(out.status.success(), "exit {:?}: {text}", out.status.code());
    assert!(text.contains("CONVERGED match=true"), "unexpected outcome: {text}");
    assert!(text.contains("recoveries=0"), "clean run should need no recoveries: {text}");
}

#[test]
fn process_kill_recovers_to_the_same_fixed_point() {
    // Rank 1's process exits with code 137 when it sees Produce for
    // round 2 — after the round-2 checkpoint policy has state to restore.
    let out = cluster(&["--kill", "1@2", "--checkpoint-every", "1"]);
    let text = stdout(&out);
    assert!(out.status.success(), "exit {:?}: {text}", out.status.code());
    assert!(text.contains("CONVERGED match=true"), "kill must not change the bits: {text}");
    let recoveries: u32 = text
        .split("recoveries=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("recoveries field");
    assert!(recoveries >= 1, "the killed worker must have been revived: {text}");
}

#[test]
fn exhausted_budget_degrades_with_certified_bounds() {
    let out = cluster(&["--kill", "1@2", "--max-revivals", "0"]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(2), "want the degraded-but-certified exit: {text}");
    assert!(
        text.contains("DEGRADED certified=true"),
        "degraded bounds must cover the exact oracle: {text}"
    );
}

#[test]
fn chaos_plus_kill_always_ends_certified() {
    for seed in ["5", "23"] {
        let chaos = format!("{seed}:0.08:120");
        let out = cluster(&["--chaos", &chaos, "--kill", "2@3", "--max-revivals", "64"]);
        let text = stdout(&out);
        match out.status.code() {
            Some(0) => assert!(
                text.contains("CONVERGED match=true"),
                "seed {seed}: converged but not to the oracle's bits: {text}"
            ),
            Some(2) => assert!(
                text.contains("DEGRADED certified=true"),
                "seed {seed}: degraded without certified bounds: {text}"
            ),
            other => panic!("seed {seed}: exit {other:?}, output: {text}"),
        }
    }
}
