//! Typed snapshot errors. A corrupted, truncated, or foreign input must
//! surface as one of these — never as a panic.

use std::fmt;
use std::io;

/// Errors from writing or reading a snapshot.
///
/// Cloneable and comparable so they can ride inside `aaa-core`'s
/// `CoreError` (I/O errors are captured as kind + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The underlying reader/writer failed.
    Io { kind: io::ErrorKind, msg: String },
    /// The first 8 bytes are not the snapshot magic — not a snapshot.
    BadMagic { found: [u8; 8] },
    /// The snapshot uses a format version this build cannot read.
    UnsupportedVersion { found: u32, supported: u32 },
    /// Input ended inside the named section (or the header).
    Truncated { section: &'static str },
    /// A section's payload failed its CRC-32 check.
    CrcMismatch { section: String, stored: u32, computed: u32 },
    /// Structurally invalid content (unknown tag, impossible length,
    /// duplicate or missing section, trailing bytes…).
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { kind, msg } => write!(f, "snapshot i/o error ({kind:?}): {msg}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "bad snapshot magic {found:02x?}: not an aaa checkpoint")
            }
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            CheckpointError::Truncated { section } => {
                write!(f, "snapshot truncated inside section {section}")
            }
            CheckpointError::CrcMismatch { section, stored, computed } => write!(
                f,
                "CRC mismatch in section {section}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CheckpointError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io { kind: e.kind(), msg: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = CheckpointError::BadMagic { found: *b"NOTACKPT" };
        assert!(e.to_string().contains("magic"));
        let e = CheckpointError::UnsupportedVersion { found: 9, supported: 1 };
        assert!(e.to_string().contains('9'));
        let e = CheckpointError::Truncated { section: "GRPH" };
        assert!(e.to_string().contains("GRPH"));
        let e: CheckpointError = io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
    }
}
