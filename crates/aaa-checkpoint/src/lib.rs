//! # aaa-checkpoint — anytime persistence
//!
//! The paper's *anytime* property (§III) guarantees that analysis can be
//! interrupted at any RC step and still yield a usable closeness estimate.
//! This crate makes that property **durable**: it defines a versioned
//! binary snapshot of the full engine state (graph, partition, per-rank
//! distance vectors with dirty masks, RC step counter, accumulated
//! [`RunStats`](aaa_runtime::RunStats), and the change-stream cursor), the
//! [`CheckpointPolicy`] that decides *when* snapshots are taken at RC
//! superstep barriers, and the typed [`CheckpointError`]s that make
//! corrupted or truncated snapshots a recoverable condition rather than a
//! panic.
//!
//! The engine-facing methods (`AnytimeEngine::checkpoint` / `restore` /
//! `recover_rank`) live in `aaa-core`, which depends on this crate; this
//! crate only knows the *format* and the snapshot data model, so it
//! depends on nothing above `aaa-graph` and `aaa-runtime`.
//!
//! ## Snapshot format appendix (version 2)
//!
//! All integers are **little-endian**. The file is a fixed header followed
//! by length-prefixed, CRC-protected sections:
//!
//! ```text
//! header   := magic version section_count
//! magic    := 8 bytes  b"AAACKPT\0"
//! version  := u32      format version (currently 2)
//! section_count := u32 number of sections that follow
//!
//! section  := tag payload_len payload crc32
//! tag      := 4 ASCII bytes  ("META" | "GRPH" | "PART" | "STAT" | "RNKS")
//! payload_len := u64   byte length of payload
//! payload  := payload_len bytes
//! crc32    := u32      CRC-32 (IEEE 802.3) of payload
//! ```
//!
//! Version-2 section payloads, in the order they are written:
//!
//! * `META` — `procs: u32`, `rc_steps: u64`, `rr_cursor: u64`,
//!   `changes_applied: u64` (the pending change-stream cursor: how many
//!   dynamic changes the engine has already absorbed).
//! * `GRPH` — `num_vertices: u64`, `num_edges: u64`, then per edge
//!   `u: u32, v: u32, w: u32` with `u < v`, in [`AdjGraph::edges`]
//!   (aaa_graph::AdjGraph::edges) order.
//! * `PART` — `k: u32`, `len: u64`, then `len × u32` part ids.
//! * `STAT` — `messages: u64`, `bytes: u64`, `sim_comm_us: f64`,
//!   `sim_compute_us: f64`, `supersteps: u64`, `collectives: u64`,
//!   `checkpoints: u64`, `restores: u64`, then the six chaos fault
//!   counters `dropped, duplicated, delayed, corrupted, stalls,
//!   retransmits` (each `u64`; added in version 2), `wall_nanos: u64`.
//! * `RNKS` — one section **per rank**, so a single rank's rows can be
//!   recovered without materializing the others: `rank: u32`, then four
//!   length-prefixed lists — local rows (`v: u32, len: u64, len × u32`
//!   distances), cached rows (same layout), dirty ids (`u32`s), pending
//!   ids (`u32`s). Row entries use `u32::MAX` for +∞, matching
//!   `aaa_graph::INF`.
//!
//! ### Versioning rules
//!
//! * The magic never changes; anything else under these 8 bytes is not a
//!   snapshot ([`CheckpointError::BadMagic`]).
//! * Any layout change — new/removed sections, field changes inside a
//!   section — **bumps the version**. Readers reject unknown versions with
//!   [`CheckpointError::UnsupportedVersion`] instead of guessing.
//! * Within a version, readers are strict: unknown tags, short payloads,
//!   CRC mismatches, and trailing bytes are all typed errors. Robustness
//!   comes from the version gate, not from lenient parsing.

pub mod error;
pub mod policy;
pub mod snapshot;
mod wire;

pub use error::CheckpointError;
pub use policy::CheckpointPolicy;
pub use snapshot::{
    EngineMeta, GraphSnapshot, PartitionSnapshot, RankSnapshot, Snapshot, FORMAT_VERSION, MAGIC,
};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the per-section
/// integrity check. Table-driven, built at first use.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
