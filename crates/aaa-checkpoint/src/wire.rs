//! Little-endian wire primitives and the length-prefixed, CRC-protected
//! section framing. Every read threads the current section name so a short
//! read becomes a precise [`CheckpointError::Truncated`].

use crate::crc32;
use crate::error::CheckpointError;
use std::io::{Read, Write};

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

pub fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

pub fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Writes one framed section: tag, length, payload, CRC.
pub fn write_section(
    w: &mut impl Write,
    tag: &[u8; 4],
    payload: &[u8],
) -> Result<(), CheckpointError> {
    w.write_all(tag)?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

fn read_exact(
    r: &mut impl Read,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), CheckpointError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated { section }
        } else {
            e.into()
        }
    })
}

pub fn read_u32(r: &mut impl Read, section: &'static str) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, section)?;
    Ok(u32::from_le_bytes(b))
}

pub fn read_u64(r: &mut impl Read, section: &'static str) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, section)?;
    Ok(u64::from_le_bytes(b))
}

pub fn read_bytes(
    r: &mut impl Read,
    n: usize,
    section: &'static str,
) -> Result<Vec<u8>, CheckpointError> {
    let mut buf = vec![0u8; n];
    read_exact(r, &mut buf, section)?;
    Ok(buf)
}

/// Reads one framed section, verifying its CRC. Returns (tag, payload).
pub fn read_section(r: &mut impl Read) -> Result<([u8; 4], Vec<u8>), CheckpointError> {
    let mut tag = [0u8; 4];
    read_exact(r, &mut tag, "section header")?;
    let len = read_u64(r, "section header")?;
    // An impossible length means corruption — fail before trying (and
    // plausibly OOM-ing) to allocate it.
    if len > MAX_SECTION_BYTES {
        return Err(CheckpointError::Malformed(format!(
            "section {} declares {len} bytes (limit {MAX_SECTION_BYTES})",
            String::from_utf8_lossy(&tag)
        )));
    }
    let payload = read_bytes(r, len as usize, "section payload")?;
    let stored = read_u32(r, "section crc")?;
    let computed = crc32(&payload);
    if stored != computed {
        return Err(CheckpointError::CrcMismatch {
            section: String::from_utf8_lossy(&tag).into_owned(),
            stored,
            computed,
        });
    }
    Ok((tag, payload))
}

/// Hard ceiling on a single section's payload (16 GiB) — far above any real
/// snapshot, low enough to reject garbage lengths from corrupted headers.
const MAX_SECTION_BYTES: u64 = 16 << 30;

/// Cursor over a section payload for field-level decoding.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self { buf, pos: 0, section }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Truncated { section: self.section });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A `u64` length prefix validated against the bytes actually left
    /// (each element needs at least `elem_bytes`), so corrupted counts fail
    /// as truncation instead of huge allocations.
    pub fn len_prefix(&mut self, elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()? as usize;
        let fits = n.checked_mul(elem_bytes).map(|total| self.pos + total <= self.buf.len());
        if fits != Some(true) {
            return Err(CheckpointError::Truncated { section: self.section });
        }
        Ok(n)
    }

    /// True when every byte has been consumed — sections must not carry
    /// trailing garbage.
    pub fn finish(&self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CheckpointError::Malformed(format!(
                "section {}: {} trailing bytes",
                self.section,
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_roundtrip() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"TEST", &[1, 2, 3, 4, 5]).unwrap();
        let (tag, payload) = read_section(&mut buf.as_slice()).unwrap();
        assert_eq!(&tag, b"TEST");
        assert_eq!(payload, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn corrupted_payload_is_crc_mismatch() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"TEST", &[9u8; 16]).unwrap();
        buf[13] ^= 0xFF; // inside payload
        match read_section(&mut buf.as_slice()) {
            Err(CheckpointError::CrcMismatch { section, .. }) => assert_eq!(section, "TEST"),
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"TEST", &[7u8; 32]).unwrap();
        for cut in [1, 5, 13, buf.len() - 1] {
            let err = read_section(&mut buf[..cut].as_ref()).unwrap_err();
            assert!(matches!(err, CheckpointError::Truncated { .. }), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn absurd_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TEST");
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_section(&mut buf.as_slice()), Err(CheckpointError::Malformed(_))));
    }

    #[test]
    fn payload_reader_guards_lengths_and_trailing() {
        let mut p = Vec::new();
        put_u32(&mut p, 7);
        put_u64(&mut p, 2);
        put_u32(&mut p, 10);
        put_u32(&mut p, 20);
        let mut r = PayloadReader::new(&p, "TEST");
        assert_eq!(r.u32().unwrap(), 7);
        let n = r.len_prefix(4).unwrap();
        assert_eq!(n, 2);
        assert_eq!(r.u32().unwrap(), 10);
        assert_eq!(r.u32().unwrap(), 20);
        r.finish().unwrap();

        // A count larger than the remaining bytes is truncation.
        let mut bad = Vec::new();
        put_u64(&mut bad, 1000);
        let mut r = PayloadReader::new(&bad, "TEST");
        assert!(matches!(r.len_prefix(4), Err(CheckpointError::Truncated { .. })));

        // Trailing bytes are malformed.
        let mut r = PayloadReader::new(&p, "TEST");
        r.u32().unwrap();
        assert!(matches!(r.finish(), Err(CheckpointError::Malformed(_))));
    }
}
