//! When to take a checkpoint. The policy is consulted by the engine's RC
//! loop (and by drive loops in benches/examples) so snapshots always land
//! at superstep barriers, where rank state is globally consistent.

/// Checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointPolicy {
    /// Snapshot after every `n`-th RC step (n ≥ 1).
    EveryNRcSteps(usize),
    /// Snapshot after every applied dynamic change (vertex batch, edge
    /// change…) — the natural cadence for change-stream consumers.
    OnChangeApplied,
    /// Only when the caller explicitly asks.
    #[default]
    Manual,
}

impl CheckpointPolicy {
    /// Should a snapshot be taken now, given that `rc_steps_done` RC steps
    /// have completed? Called at the barrier after each RC step.
    pub fn due_after_rc_step(&self, rc_steps_done: usize) -> bool {
        match *self {
            CheckpointPolicy::EveryNRcSteps(n) => n > 0 && rc_steps_done % n == 0,
            CheckpointPolicy::OnChangeApplied | CheckpointPolicy::Manual => false,
        }
    }

    /// Should a snapshot be taken after a dynamic change was applied?
    pub fn due_after_change(&self) -> bool {
        matches!(self, CheckpointPolicy::OnChangeApplied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_n_fires_on_multiples() {
        let p = CheckpointPolicy::EveryNRcSteps(3);
        assert!(!p.due_after_rc_step(1));
        assert!(!p.due_after_rc_step(2));
        assert!(p.due_after_rc_step(3));
        assert!(p.due_after_rc_step(6));
        assert!(!p.due_after_change());
        // Degenerate n = 0 never fires instead of dividing by zero.
        assert!(!CheckpointPolicy::EveryNRcSteps(0).due_after_rc_step(5));
    }

    #[test]
    fn change_and_manual_policies() {
        assert!(CheckpointPolicy::OnChangeApplied.due_after_change());
        assert!(!CheckpointPolicy::OnChangeApplied.due_after_rc_step(4));
        assert!(!CheckpointPolicy::Manual.due_after_change());
        assert!(!CheckpointPolicy::Manual.due_after_rc_step(4));
        assert_eq!(CheckpointPolicy::default(), CheckpointPolicy::Manual);
    }
}
