//! The snapshot data model and its versioned binary encoding.
//!
//! The DTOs here mirror the engine's state without depending on
//! `aaa-core`: the engine converts itself to/from a [`Snapshot`] and this
//! module owns the bytes. See the crate docs for the full format appendix.

use crate::error::CheckpointError;
use crate::wire::{
    put_f64, put_u32, put_u64, read_section, read_u32, write_section, PayloadReader,
};
use aaa_graph::{Dist, PartId, VertexId, Weight};
use aaa_runtime::{FaultCounters, RunStats};
use std::io::{Read, Write};
use std::time::Duration;

/// First 8 bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"AAACKPT\0";

/// Format version this build writes and reads. Version 2 extended the
/// STAT section with the chaos-layer fault counters; version 3 added the
/// row-migration counters; version 4 added the optional METR section
/// listing the extra centrality metrics the engine was maintaining.
/// Older snapshots are rejected (no archives of any exist — every prior
/// format shipped unreleased).
pub const FORMAT_VERSION: u32 = 4;

/// Engine-level scalars: processor count, RC progress, the round-robin
/// assignment cursor, and the change-stream cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineMeta {
    pub procs: u32,
    pub rc_steps: u64,
    pub rr_cursor: u64,
    /// How many dynamic changes the engine had absorbed when the snapshot
    /// was taken — the resume point in the caller's change stream.
    pub changes_applied: u64,
}

/// The full graph as an edge list (undirected, `u < v`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphSnapshot {
    pub num_vertices: u64,
    pub edges: Vec<(VertexId, VertexId, Weight)>,
}

/// The vertex→processor assignment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionSnapshot {
    pub k: u32,
    pub assignment: Vec<PartId>,
}

/// One rank's distance-vector state: local rows, cached external-boundary
/// rows, the dirty mask, and pending dynamic-update pivots. Adjacency and
/// ownership are *not* stored — they are rebuilt deterministically from
/// the graph and partition sections.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RankSnapshot {
    pub rank: u32,
    pub local: Vec<(VertexId, Vec<Dist>)>,
    pub cached: Vec<(VertexId, Vec<Dist>)>,
    pub dirty: Vec<VertexId>,
    pub pending: Vec<VertexId>,
}

impl RankSnapshot {
    /// Bytes this rank's rows occupy on the wire (8-byte header + 4 bytes
    /// per entry, mirroring `RowMsg` pricing).
    pub fn row_bytes(&self) -> usize {
        self.local.iter().chain(&self.cached).map(|(_, r)| 8 + 4 * r.len()).sum()
    }
}

/// A complete engine snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub meta: EngineMeta,
    pub graph: GraphSnapshot,
    pub partition: PartitionSnapshot,
    pub stats: RunStats,
    pub ranks: Vec<RankSnapshot>,
    /// Wire ids of the extra metrics (beyond closeness) the engine was
    /// maintaining when the snapshot was taken. Metric *state* is not
    /// persisted — it is rebuilt from the restored DV rows on the first
    /// publish after restore — so only the identity of each metric is
    /// recorded. Empty on closeness-only snapshots, in which case the
    /// METR section is omitted entirely.
    pub metrics: Vec<u8>,
}

impl Snapshot {
    /// The snapshot of one rank, if present.
    pub fn rank(&self, rank: usize) -> Option<&RankSnapshot> {
        self.ranks.iter().find(|r| r.rank as usize == rank)
    }

    /// Serializes to the current binary format ([`FORMAT_VERSION`]).
    pub fn write_to(&self, mut w: impl Write) -> Result<(), CheckpointError> {
        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        let sections = 4 + self.ranks.len() as u32 + if self.metrics.is_empty() { 0 } else { 1 };
        w.write_all(&sections.to_le_bytes())?;

        let mut p = Vec::new();
        put_u32(&mut p, self.meta.procs);
        put_u64(&mut p, self.meta.rc_steps);
        put_u64(&mut p, self.meta.rr_cursor);
        put_u64(&mut p, self.meta.changes_applied);
        write_section(&mut w, b"META", &p)?;

        p.clear();
        put_u64(&mut p, self.graph.num_vertices);
        put_u64(&mut p, self.graph.edges.len() as u64);
        for &(u, v, wt) in &self.graph.edges {
            put_u32(&mut p, u);
            put_u32(&mut p, v);
            put_u32(&mut p, wt);
        }
        write_section(&mut w, b"GRPH", &p)?;

        p.clear();
        put_u32(&mut p, self.partition.k);
        put_u64(&mut p, self.partition.assignment.len() as u64);
        for &part in &self.partition.assignment {
            put_u32(&mut p, part);
        }
        write_section(&mut w, b"PART", &p)?;

        p.clear();
        put_u64(&mut p, self.stats.messages);
        put_u64(&mut p, self.stats.bytes);
        put_f64(&mut p, self.stats.sim_comm_us);
        put_f64(&mut p, self.stats.sim_compute_us);
        put_u64(&mut p, self.stats.supersteps);
        put_u64(&mut p, self.stats.collectives);
        put_u64(&mut p, self.stats.checkpoints);
        put_u64(&mut p, self.stats.restores);
        put_u64(&mut p, self.stats.migrations);
        put_u64(&mut p, self.stats.migrated_rows);
        put_u64(&mut p, self.stats.migration_bytes);
        put_u64(&mut p, self.stats.faults.dropped);
        put_u64(&mut p, self.stats.faults.duplicated);
        put_u64(&mut p, self.stats.faults.delayed);
        put_u64(&mut p, self.stats.faults.corrupted);
        put_u64(&mut p, self.stats.faults.stalls);
        put_u64(&mut p, self.stats.faults.retransmits);
        put_u64(&mut p, self.stats.wall.as_nanos() as u64);
        write_section(&mut w, b"STAT", &p)?;

        if !self.metrics.is_empty() {
            p.clear();
            put_u32(&mut p, self.metrics.len() as u32);
            for &id in &self.metrics {
                p.push(id);
            }
            write_section(&mut w, b"METR", &p)?;
        }

        for rs in &self.ranks {
            p.clear();
            put_u32(&mut p, rs.rank);
            for rows in [&rs.local, &rs.cached] {
                put_u64(&mut p, rows.len() as u64);
                for (v, row) in rows {
                    put_u32(&mut p, *v);
                    put_u64(&mut p, row.len() as u64);
                    for &d in row {
                        put_u32(&mut p, d);
                    }
                }
            }
            for ids in [&rs.dirty, &rs.pending] {
                put_u64(&mut p, ids.len() as u64);
                for &v in ids {
                    put_u32(&mut p, v);
                }
            }
            write_section(&mut w, b"RNKS", &p)?;
        }
        Ok(())
    }

    /// Serializes to an in-memory buffer.
    pub fn to_bytes(&self) -> Result<Vec<u8>, CheckpointError> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)?;
        Ok(buf)
    }

    /// Deserializes from the current binary format, verifying magic,
    /// version, section structure and every CRC. All failure modes are
    /// typed [`CheckpointError`]s.
    pub fn read_from(mut r: impl Read) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                CheckpointError::Truncated { section: "header" }
            } else {
                CheckpointError::from(e)
            }
        })?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        let version = read_u32(&mut r, "header")?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let sections = read_u32(&mut r, "header")?;

        let mut meta: Option<EngineMeta> = None;
        let mut graph: Option<GraphSnapshot> = None;
        let mut partition: Option<PartitionSnapshot> = None;
        let mut stats: Option<RunStats> = None;
        let mut ranks: Vec<RankSnapshot> = Vec::new();
        let mut metrics: Option<Vec<u8>> = None;

        for _ in 0..sections {
            let (tag, payload) = read_section(&mut r)?;
            match &tag {
                b"META" => {
                    let mut p = PayloadReader::new(&payload, "META");
                    let m = EngineMeta {
                        procs: p.u32()?,
                        rc_steps: p.u64()?,
                        rr_cursor: p.u64()?,
                        changes_applied: p.u64()?,
                    };
                    p.finish()?;
                    if meta.replace(m).is_some() {
                        return Err(CheckpointError::Malformed("duplicate META section".into()));
                    }
                }
                b"GRPH" => {
                    let mut p = PayloadReader::new(&payload, "GRPH");
                    let num_vertices = p.u64()?;
                    let m = p.len_prefix(12)?;
                    let mut edges = Vec::with_capacity(m);
                    for _ in 0..m {
                        edges.push((p.u32()?, p.u32()?, p.u32()?));
                    }
                    p.finish()?;
                    if graph.replace(GraphSnapshot { num_vertices, edges }).is_some() {
                        return Err(CheckpointError::Malformed("duplicate GRPH section".into()));
                    }
                }
                b"PART" => {
                    let mut p = PayloadReader::new(&payload, "PART");
                    let k = p.u32()?;
                    let len = p.len_prefix(4)?;
                    let mut assignment = Vec::with_capacity(len);
                    for _ in 0..len {
                        assignment.push(p.u32()?);
                    }
                    p.finish()?;
                    if partition.replace(PartitionSnapshot { k, assignment }).is_some() {
                        return Err(CheckpointError::Malformed("duplicate PART section".into()));
                    }
                }
                b"STAT" => {
                    let mut p = PayloadReader::new(&payload, "STAT");
                    let s = RunStats {
                        messages: p.u64()?,
                        bytes: p.u64()?,
                        sim_comm_us: p.f64()?,
                        sim_compute_us: p.f64()?,
                        supersteps: p.u64()?,
                        collectives: p.u64()?,
                        checkpoints: p.u64()?,
                        restores: p.u64()?,
                        migrations: p.u64()?,
                        migrated_rows: p.u64()?,
                        migration_bytes: p.u64()?,
                        faults: FaultCounters {
                            dropped: p.u64()?,
                            duplicated: p.u64()?,
                            delayed: p.u64()?,
                            corrupted: p.u64()?,
                            stalls: p.u64()?,
                            retransmits: p.u64()?,
                        },
                        wall: Duration::from_nanos(p.u64()?),
                    };
                    p.finish()?;
                    if stats.replace(s).is_some() {
                        return Err(CheckpointError::Malformed("duplicate STAT section".into()));
                    }
                }
                b"METR" => {
                    let mut p = PayloadReader::new(&payload, "METR");
                    let n = p.u32()? as usize;
                    let mut ids = Vec::with_capacity(n.min(payload.len()));
                    for _ in 0..n {
                        ids.push(p.u8()?);
                    }
                    p.finish()?;
                    if ids.is_empty() {
                        // The writer omits the section entirely when there
                        // are no extra metrics; an empty one is corruption.
                        return Err(CheckpointError::Malformed("empty METR section".into()));
                    }
                    if metrics.replace(ids).is_some() {
                        return Err(CheckpointError::Malformed("duplicate METR section".into()));
                    }
                }
                b"RNKS" => {
                    let mut p = PayloadReader::new(&payload, "RNKS");
                    let rank = p.u32()?;
                    let read_rows = |p: &mut PayloadReader| -> Result<_, CheckpointError> {
                        let n = p.len_prefix(12)?;
                        let mut rows = Vec::with_capacity(n);
                        for _ in 0..n {
                            let v = p.u32()?;
                            let len = p.len_prefix(4)?;
                            let mut row = Vec::with_capacity(len);
                            for _ in 0..len {
                                row.push(p.u32()?);
                            }
                            rows.push((v, row));
                        }
                        Ok(rows)
                    };
                    let local = read_rows(&mut p)?;
                    let cached = read_rows(&mut p)?;
                    let read_ids = |p: &mut PayloadReader| -> Result<_, CheckpointError> {
                        let n = p.len_prefix(4)?;
                        let mut ids = Vec::with_capacity(n);
                        for _ in 0..n {
                            ids.push(p.u32()?);
                        }
                        Ok(ids)
                    };
                    let dirty = read_ids(&mut p)?;
                    let pending = read_ids(&mut p)?;
                    p.finish()?;
                    ranks.push(RankSnapshot { rank, local, cached, dirty, pending });
                }
                other => {
                    return Err(CheckpointError::Malformed(format!(
                        "unknown section tag {:?}",
                        String::from_utf8_lossy(other)
                    )));
                }
            }
        }

        let meta = meta.ok_or_else(|| CheckpointError::Malformed("missing META section".into()))?;
        let graph =
            graph.ok_or_else(|| CheckpointError::Malformed("missing GRPH section".into()))?;
        let partition =
            partition.ok_or_else(|| CheckpointError::Malformed("missing PART section".into()))?;
        let stats =
            stats.ok_or_else(|| CheckpointError::Malformed("missing STAT section".into()))?;
        if ranks.len() != meta.procs as usize {
            return Err(CheckpointError::Malformed(format!(
                "snapshot has {} rank sections for {} procs",
                ranks.len(),
                meta.procs
            )));
        }
        // Trailing bytes after the declared sections are corruption.
        let mut probe = [0u8; 1];
        match r.read(&mut probe) {
            Ok(0) => {}
            Ok(_) => {
                return Err(CheckpointError::Malformed("trailing bytes after final section".into()))
            }
            Err(e) => return Err(e.into()),
        }
        Ok(Snapshot { meta, graph, partition, stats, ranks, metrics: metrics.unwrap_or_default() })
    }

    /// Deserializes from an in-memory buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        Self::read_from(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            meta: EngineMeta { procs: 2, rc_steps: 5, rr_cursor: 1, changes_applied: 3 },
            graph: GraphSnapshot { num_vertices: 4, edges: vec![(0, 1, 1), (1, 2, 2), (2, 3, 1)] },
            partition: PartitionSnapshot { k: 2, assignment: vec![0, 0, 1, 1] },
            stats: RunStats {
                messages: 12,
                bytes: 480,
                sim_comm_us: 3.5,
                sim_compute_us: 7.25,
                supersteps: 6,
                collectives: 2,
                checkpoints: 1,
                restores: 0,
                migrations: 2,
                migrated_rows: 6,
                migration_bytes: 144,
                faults: FaultCounters {
                    dropped: 3,
                    duplicated: 1,
                    delayed: 2,
                    corrupted: 1,
                    stalls: 1,
                    retransmits: 9,
                },
                wall: Duration::from_micros(1234),
            },
            ranks: vec![
                RankSnapshot {
                    rank: 0,
                    local: vec![(0, vec![0, 1, 3, 4]), (1, vec![1, 0, 2, 3])],
                    cached: vec![(2, vec![3, 2, 0, 1])],
                    dirty: vec![1],
                    pending: vec![],
                },
                RankSnapshot {
                    rank: 1,
                    local: vec![(2, vec![3, 2, 0, 1]), (3, vec![4, 3, 1, 0])],
                    cached: vec![],
                    dirty: vec![],
                    pending: vec![3],
                },
            ],
            metrics: vec![1],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let s = sample();
        let bytes = s.to_bytes().unwrap();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.rank(1).unwrap().local.len(), 2);
        assert!(back.rank(9).is_none());
    }

    #[test]
    fn metr_section_is_omitted_when_empty_and_roundtrips_when_present() {
        // Closeness-only snapshot: no METR section on the wire.
        let mut s = sample();
        s.metrics.clear();
        let bytes = s.to_bytes().unwrap();
        assert!(!bytes.windows(4).any(|w| w == b"METR"));
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert!(back.metrics.is_empty());

        // Snapshot with extra metrics carries them through.
        let s = sample();
        let bytes = s.to_bytes().unwrap();
        assert!(bytes.windows(4).any(|w| w == b"METR"));
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap().metrics, vec![1]);
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes[0] = b'X';
        assert!(matches!(Snapshot::from_bytes(&bytes), Err(CheckpointError::BadMagic { .. })));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes[8] = 99; // version LE byte 0
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion { found: 99, supported: FORMAT_VERSION })
        ));
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let bytes = sample().to_bytes().unwrap();
        for cut in 0..bytes.len() {
            match Snapshot::from_bytes(&bytes[..cut]) {
                Err(CheckpointError::Truncated { .. }) | Err(CheckpointError::Malformed(_)) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_corruption_is_crc_mismatch() {
        let good = sample().to_bytes().unwrap();
        // Flip a byte inside the GRPH payload (past header + META section).
        let mut bytes = good.clone();
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0x55;
        match Snapshot::from_bytes(&bytes) {
            Ok(s) => assert_eq!(s, sample(), "flip must not silently alter content"),
            Err(
                CheckpointError::CrcMismatch { .. }
                | CheckpointError::Malformed(_)
                | CheckpointError::Truncated { .. },
            ) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes.push(0);
        assert!(matches!(Snapshot::from_bytes(&bytes), Err(CheckpointError::Malformed(_))));
    }

    #[test]
    fn row_bytes_accounting() {
        let s = sample();
        // Rank 0: 3 rows × (8 + 4·4) = 72.
        assert_eq!(s.ranks[0].row_bytes(), 72);
    }
}
