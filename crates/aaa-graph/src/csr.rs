//! Immutable compressed-sparse-row snapshot of a graph.
//!
//! The compute-heavy phases (per-source Dijkstra in the IA phase, reference
//! APSP) traverse the graph millions of times; CSR keeps each vertex's
//! neighbor list contiguous for cache-friendly scans, per the HPC guidance
//! of minimizing cache misses on hot loops.

use crate::{AdjGraph, VertexId, Weight};

/// Compressed-sparse-row view: `offsets[v]..offsets[v+1]` indexes the
/// neighbor/weight arrays of vertex `v`. Undirected edges appear once per
/// direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl Csr {
    /// Snapshots an adjacency graph.
    pub fn from_adj(g: &AdjGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.num_edges());
        let mut weights = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0);
        for v in 0..n as VertexId {
            for &(t, w) in g.neighbors(v) {
                targets.push(t);
                weights.push(w);
            }
            offsets.push(targets.len() as u32);
        }
        Self { offsets, targets, weights }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbor ids of `v` as a contiguous slice.
    #[inline]
    pub fn targets(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Edge weights of `v`, parallel to [`Csr::targets`].
    #[inline]
    pub fn weights(&self, v: VertexId) -> &[Weight] {
        &self.weights[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Iterator over `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.targets(v).iter().copied().zip(self.weights(v).iter().copied())
    }

    /// Heap bytes held by the three CSR arrays (capacity, not length).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.targets.capacity() * std::mem::size_of::<VertexId>()
            + self.weights.capacity() * std::mem::size_of::<Weight>()
    }
}

impl From<&AdjGraph> for Csr {
    fn from(g: &AdjGraph) -> Self {
        Csr::from_adj(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_matches_adjacency() {
        let mut g = AdjGraph::with_vertices(4);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 5).unwrap();
        g.add_edge(0, 3, 2).unwrap();
        let csr = Csr::from_adj(&g);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(2), 1);
        let mut nbrs: Vec<_> = csr.neighbors(0).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![(1, 1), (3, 2)]);
        assert_eq!(csr.targets(2), &[1]);
        assert_eq!(csr.weights(2), &[5]);
    }

    #[test]
    fn empty_and_isolated() {
        let g = AdjGraph::with_vertices(3);
        let csr = Csr::from_adj(&g);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.degree(1), 0);
        assert!(csr.neighbors(1).next().is_none());
    }
}
