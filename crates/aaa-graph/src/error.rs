//! Typed errors for graph construction, mutation and I/O.

use crate::VertexId;
use std::fmt;

/// Errors produced by graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id referenced an out-of-range vertex.
    VertexOutOfRange { vertex: VertexId, len: usize },
    /// Self-loops are rejected: they never change a shortest path and the
    /// paper's model has none.
    SelfLoop { vertex: VertexId },
    /// The edge already exists (use `set_weight` to change a weight).
    DuplicateEdge { u: VertexId, v: VertexId },
    /// The edge was not found.
    MissingEdge { u: VertexId, v: VertexId },
    /// Edge weights must be strictly positive for Dijkstra-based phases.
    ZeroWeight { u: VertexId, v: VertexId },
    /// Parse or structural error while reading a graph file.
    Parse { line: usize, message: String },
    /// Underlying I/O failure.
    Io(String),
    /// An operation received an argument outside its domain
    /// (e.g. generating a graph with zero vertices).
    InvalidArgument(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, len } => {
                write!(f, "vertex {vertex} out of range (graph has {len} vertices)")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop on vertex {vertex} rejected"),
            GraphError::DuplicateEdge { u, v } => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::MissingEdge { u, v } => write!(f, "edge ({u}, {v}) not found"),
            GraphError::ZeroWeight { u, v } => {
                write!(f, "edge ({u}, {v}) has zero weight; weights must be positive")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 7, len: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("(1, 2)"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
