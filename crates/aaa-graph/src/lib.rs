//! Graph substrate for the anytime-anywhere reproduction.
//!
//! This crate provides everything the engine in `aaa-core` needs from a graph
//! library, built from scratch:
//!
//! * [`AdjGraph`] — a growable, undirected, weighted adjacency-list graph
//!   that supports the dynamic updates the paper studies (vertex and edge
//!   additions/removals).
//! * [`Csr`] — an immutable compressed-sparse-row snapshot for cache-friendly
//!   traversal in the compute-heavy phases.
//! * [`generators`] — scale-free (Barabási–Albert), Erdős–Rényi,
//!   Watts–Strogatz, R-MAT and planted-partition (SBM) generators, replacing
//!   the Pajek generator used in the paper's evaluation.
//! * [`community`] — a Louvain modularity implementation, replacing Pajek's
//!   Louvain community extraction used to produce community-structured
//!   vertex-addition batches (§V.B.2 of the paper).
//! * Reference algorithms ([`sssp`], [`apsp`], [`closeness`]) used as ground
//!   truth by the test suites and by the Baseline Restart comparisons.
//! * [`io`] — edge-list and (minimal) Pajek `.net` readers/writers.
//!
//! Distances are `u32` with [`INF`] as "unreachable"; arithmetic goes through
//! [`dist_add`] which saturates at `INF` so relaxations can never overflow.

pub mod adjacency;
pub mod apsp;
pub mod builder;
pub mod centrality;
pub mod closeness;
pub mod community;
pub mod csr;
pub mod error;
pub mod generators;
pub mod io;
pub mod sssp;
pub mod stats;

pub use adjacency::AdjGraph;
pub use builder::GraphBuilder;
pub use csr::Csr;
pub use error::GraphError;

/// Vertex identifier. Dense, zero-based.
pub type VertexId = u32;

/// Edge weight. The paper's graphs are weighted (its companion papers handle
/// edge-weight changes); unweighted graphs use weight 1.
pub type Weight = u32;

/// A shortest-path distance estimate.
pub type Dist = u32;

/// Partition / processor identifier.
pub type PartId = u32;

/// "Unreachable" distance. All distance arithmetic saturates here.
pub const INF: Dist = u32::MAX;

/// Saturating min-plus addition: `INF + anything = INF`.
///
/// This is the single arithmetic primitive of the distance-vector routing
/// relaxations in `aaa-core`; keeping it saturating makes the triangle
/// relaxation `d(a,t) <- min(d(a,t), d(a,b) + d(b,t))` safe without branches
/// at every call site.
#[inline(always)]
pub fn dist_add(a: Dist, b: Dist) -> Dist {
    a.saturating_add(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_add_saturates_at_inf() {
        assert_eq!(dist_add(INF, 0), INF);
        assert_eq!(dist_add(INF, 5), INF);
        assert_eq!(dist_add(5, INF), INF);
        assert_eq!(dist_add(INF, INF), INF);
    }

    #[test]
    fn dist_add_is_plain_addition_below_saturation() {
        assert_eq!(dist_add(2, 3), 5);
        assert_eq!(dist_add(0, 0), 0);
        assert_eq!(dist_add(INF - 1, 1), INF);
    }
}
