//! Additional centrality measures (§IV of the paper names degree,
//! betweenness, closeness and eigenvector centrality as the key SNA
//! metrics; closeness lives in [`crate::closeness`], the others here).

use crate::{Csr, Dist, VertexId, INF};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Degree centrality: `deg(v) / (n − 1)` (Freeman normalization).
pub fn degree_centrality(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n as VertexId).map(|v| g.degree(v) as f64 / (n - 1) as f64).collect()
}

/// Eigenvector centrality by power iteration (undirected, weighted).
/// Returns the L2-normalized dominant eigenvector, or zeros on an edgeless
/// graph.
pub fn eigenvector_centrality(g: &Csr, iterations: usize, tol: f64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return vec![0.0; n];
    }
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut next = vec![0.0; n];
    for _ in 0..iterations.max(1) {
        // Shifted iteration (A + I): same eigenvectors, but the spectral
        // shift prevents the sign-flip oscillation on bipartite graphs.
        next.copy_from_slice(&x);
        for v in 0..n as VertexId {
            let xv = x[v as usize];
            for (t, w) in g.neighbors(v) {
                next[t as usize] += w as f64 * xv;
            }
        }
        let norm = next.iter().map(|e| e * e).sum::<f64>().sqrt();
        if norm == 0.0 {
            return vec![0.0; n];
        }
        next.iter_mut().for_each(|e| *e /= norm);
        let delta: f64 = x.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut x, &mut next);
        if delta < tol {
            break;
        }
    }
    x
}

/// Betweenness centrality by Brandes' algorithm (weighted variant,
/// Dijkstra-based), parallel over sources. Undirected convention: each
/// pair's dependency is accumulated from both endpoints, so the final
/// scores are halved.
pub fn betweenness_centrality(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    (0..n as VertexId)
        .into_par_iter()
        .map(|s| brandes_from(g, s))
        .reduce(
            || vec![0.0; n],
            |mut acc, partial| {
                for (a, p) in acc.iter_mut().zip(partial) {
                    *a += p;
                }
                acc
            },
        )
        .into_iter()
        .map(|x| x / 2.0)
        .collect()
}

/// Single-source Brandes pass: Dijkstra SSSP with shortest-path counts,
/// then dependency accumulation in reverse settle order.
fn brandes_from(g: &Csr, s: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut dist: Vec<Dist> = vec![INF; n];
    let mut sigma: Vec<f64> = vec![0.0; n];
    let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut settled: Vec<VertexId> = Vec::with_capacity(n);
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();

    dist[s as usize] = 0;
    sigma[s as usize] = 1.0;
    heap.push(Reverse((0, s)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if done[v as usize] {
            continue;
        }
        done[v as usize] = true;
        settled.push(v);
        for (t, w) in g.neighbors(v) {
            let nd = d.saturating_add(w as Dist);
            let td = dist[t as usize];
            if nd < td {
                dist[t as usize] = nd;
                sigma[t as usize] = sigma[v as usize];
                preds[t as usize].clear();
                preds[t as usize].push(v);
                heap.push(Reverse((nd, t)));
            } else if nd == td && nd != INF {
                sigma[t as usize] += sigma[v as usize];
                preds[t as usize].push(v);
            }
        }
    }
    let mut delta = vec![0.0; n];
    let mut out = vec![0.0; n];
    for &v in settled.iter().rev() {
        for &p in &preds[v as usize] {
            delta[p as usize] += sigma[p as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
        }
        if v != s {
            out[v as usize] += delta[v as usize];
        }
    }
    out
}

/// Local clustering coefficient of each vertex (unweighted triangles).
pub fn clustering_coefficients(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            let nbrs = g.targets(v);
            let k = nbrs.len();
            if k < 2 {
                return 0.0;
            }
            let mut closed = 0usize;
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if g.targets(a).contains(&b) {
                        closed += 1;
                    }
                }
            }
            2.0 * closed as f64 / (k * (k - 1)) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdjGraph;

    fn path4() -> Csr {
        let mut g = AdjGraph::with_vertices(4);
        for v in 0..3 {
            g.add_edge(v, v + 1, 1).unwrap();
        }
        Csr::from_adj(&g)
    }

    #[test]
    fn degree_centrality_of_path() {
        let c = degree_centrality(&path4());
        assert!((c[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((c[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn betweenness_of_path() {
        // Path 0-1-2-3: pairs through vertex 1: (0,2), (0,3) -> 2.
        // Through vertex 2: (0,3), (1,3) -> 2. Endpoints: 0.
        let b = betweenness_centrality(&path4());
        assert!((b[0]).abs() < 1e-9);
        assert!((b[1] - 2.0).abs() < 1e-9, "{b:?}");
        assert!((b[2] - 2.0).abs() < 1e-9);
        assert!((b[3]).abs() < 1e-9);
    }

    #[test]
    fn betweenness_of_star_center() {
        let mut g = AdjGraph::with_vertices(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf, 1).unwrap();
        }
        let b = betweenness_centrality(&Csr::from_adj(&g));
        // Center mediates all C(4,2) = 6 leaf pairs.
        assert!((b[0] - 6.0).abs() < 1e-9, "{b:?}");
        assert!(b[1..].iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn betweenness_splits_over_equal_paths() {
        // Square 0-1-2-3-0: two equal shortest paths between opposite
        // corners; each midpoint gets 1/2 per opposite pair.
        let mut g = AdjGraph::with_vertices(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.add_edge(u, v, 1).unwrap();
        }
        let b = betweenness_centrality(&Csr::from_adj(&g));
        for &x in &b {
            assert!((x - 0.5).abs() < 1e-9, "{b:?}");
        }
    }

    #[test]
    fn weighted_betweenness_prefers_light_paths() {
        // 0-1 (1), 1-2 (1), 0-2 (10): all 0..2 traffic goes through 1.
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(0, 2, 10).unwrap();
        let b = betweenness_centrality(&Csr::from_adj(&g));
        assert!((b[1] - 1.0).abs() < 1e-9, "{b:?}");
    }

    #[test]
    fn eigenvector_centrality_peaks_at_hub() {
        let mut g = AdjGraph::with_vertices(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf, 1).unwrap();
        }
        let e = eigenvector_centrality(&Csr::from_adj(&g), 200, 1e-12);
        assert!(e[0] > e[1]);
        assert!((e[1] - e[4]).abs() < 1e-9);
        // Edgeless graph.
        let z = eigenvector_centrality(&Csr::from_adj(&AdjGraph::with_vertices(3)), 10, 1e-9);
        assert_eq!(z, vec![0.0; 3]);
    }

    #[test]
    fn clustering_of_triangle_and_path() {
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(0, 2, 1).unwrap();
        let c = clustering_coefficients(&Csr::from_adj(&g));
        assert_eq!(c, vec![1.0, 1.0, 1.0]);
        let c = clustering_coefficients(&path4());
        assert_eq!(c, vec![0.0; 4]);
    }
}
