//! Additional centrality measures (§IV of the paper names degree,
//! betweenness, closeness and eigenvector centrality as the key SNA
//! metrics; closeness lives in [`crate::closeness`], the others here).

use crate::{dist_add, Csr, Dist, VertexId, Weight, INF};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Degree centrality: `deg(v) / (n − 1)` (Freeman normalization).
pub fn degree_centrality(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n as VertexId).map(|v| g.degree(v) as f64 / (n - 1) as f64).collect()
}

/// Eigenvector centrality by power iteration (undirected, weighted).
/// Returns the L2-normalized dominant eigenvector, or zeros on an edgeless
/// graph.
pub fn eigenvector_centrality(g: &Csr, iterations: usize, tol: f64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return vec![0.0; n];
    }
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut next = vec![0.0; n];
    for _ in 0..iterations.max(1) {
        // Shifted iteration (A + I): same eigenvectors, but the spectral
        // shift prevents the sign-flip oscillation on bipartite graphs.
        next.copy_from_slice(&x);
        for v in 0..n as VertexId {
            let xv = x[v as usize];
            for (t, w) in g.neighbors(v) {
                next[t as usize] += w as f64 * xv;
            }
        }
        let norm = next.iter().map(|e| e * e).sum::<f64>().sqrt();
        if norm == 0.0 {
            return vec![0.0; n];
        }
        next.iter_mut().for_each(|e| *e /= norm);
        let delta: f64 = x.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut x, &mut next);
        if delta < tol {
            break;
        }
    }
    x
}

/// Betweenness centrality by Brandes' algorithm (weighted variant,
/// Dijkstra-based), parallel over sources. Undirected convention: each
/// pair's dependency is accumulated from both endpoints, so the final
/// scores are halved.
pub fn betweenness_centrality(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    (0..n as VertexId)
        .into_par_iter()
        .map(|s| brandes_from(g, s))
        .reduce(
            || vec![0.0; n],
            |mut acc, partial| {
                for (a, p) in acc.iter_mut().zip(partial) {
                    *a += p;
                }
                acc
            },
        )
        .into_iter()
        .map(|x| x / 2.0)
        .collect()
}

/// Single-source Brandes pass: Dijkstra SSSP with shortest-path counts,
/// then dependency accumulation in reverse settle order.
fn brandes_from(g: &Csr, s: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut dist: Vec<Dist> = vec![INF; n];
    let mut sigma: Vec<f64> = vec![0.0; n];
    let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut settled: Vec<VertexId> = Vec::with_capacity(n);
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();

    dist[s as usize] = 0;
    sigma[s as usize] = 1.0;
    heap.push(Reverse((0, s)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if done[v as usize] {
            continue;
        }
        done[v as usize] = true;
        settled.push(v);
        for (t, w) in g.neighbors(v) {
            let nd = d.saturating_add(w as Dist);
            let td = dist[t as usize];
            if nd < td {
                dist[t as usize] = nd;
                sigma[t as usize] = sigma[v as usize];
                preds[t as usize].clear();
                preds[t as usize].push(v);
                heap.push(Reverse((nd, t)));
            } else if nd == td && nd != INF {
                sigma[t as usize] += sigma[v as usize];
                preds[t as usize].push(v);
            }
        }
    }
    let mut delta = vec![0.0; n];
    let mut out = vec![0.0; n];
    for &v in settled.iter().rev() {
        for &p in &preds[v as usize] {
            delta[p as usize] += sigma[p as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
        }
        if v != s {
            out[v as usize] += delta[v as usize];
        }
    }
    out
}

/// Brandes dependency vector of one source, derived from its distance
/// *row* instead of a fresh Dijkstra traversal — the kernel shared by the
/// deterministic betweenness oracle below and the engine's incremental
/// `IncBetweenness` metric (which already maintains the rows as DV state).
///
/// Vertices are processed in canonical `(distance, id)` order — the same
/// id tie-break the serve layer's top-k total order uses — and every
/// floating-point accumulation happens in that canonical order, never in
/// neighbor-list order. Two callers handing in the same row and the same
/// edge set therefore get **bit-identical** vectors regardless of backend
/// (adjacency-list vs CSR), which is what lets the incremental metric
/// promise exact equality with the oracle at convergence.
///
/// `row` may be a partial (admissible, entrywise ≥ exact) anytime row: a
/// vertex whose row entry is finite but not yet witnessed by any
/// consistent predecessor (`row[p] + w == row[v]`) gets `σ = 0` and is
/// skipped by the dependency pass, so the result is a well-defined
/// approximation that converges to the exact Brandes vector as the row
/// does. Requires positive edge weights (zero-weight edges would break
/// the strict distance ordering path counting relies on). The source's
/// own entry is zeroed (a vertex never mediates for itself).
pub fn dependency_from_row<F, I>(source: VertexId, row: &[Dist], succ: F) -> Vec<f64>
where
    F: Fn(VertexId) -> I,
    I: Iterator<Item = (VertexId, Weight)>,
{
    let n = row.len();
    let mut order: Vec<VertexId> = (0..n as VertexId).filter(|&v| row[v as usize] != INF).collect();
    order.sort_unstable_by_key(|&v| (row[v as usize], v));

    // Forward sweep: push path counts along tight edges. Processing in
    // canonical order means every contribution to `sigma[t]` arrives in
    // the `(distance, id)` order of its predecessor — deterministic no
    // matter how the backend orders neighbor lists.
    let mut sigma = vec![0.0f64; n];
    if (source as usize) < n && row[source as usize] != INF {
        sigma[source as usize] = 1.0;
    }
    for &v in &order {
        if sigma[v as usize] == 0.0 {
            continue; // no consistent shortest-path mass reaches v yet
        }
        let dv = row[v as usize];
        for (t, w) in succ(v) {
            if t == v || t as usize >= n {
                continue; // neighbor beyond this row's coverage (mid-grow)
            }
            let dt = row[t as usize];
            if dt != INF && dist_add(dv, w as Dist) == dt && dt > dv {
                sigma[t as usize] += sigma[v as usize];
            }
        }
    }

    // Backward sweep in reverse canonical order: classic Brandes
    // accumulation, each `delta[p]` receiving one term per tight edge.
    let mut delta = vec![0.0f64; n];
    for &v in order.iter().rev() {
        if v == source || sigma[v as usize] == 0.0 {
            continue;
        }
        let dv = row[v as usize];
        let term = 1.0 + delta[v as usize];
        for (p, w) in succ(v) {
            if p == v || p as usize >= n {
                continue;
            }
            let dp = row[p as usize];
            if dp != INF && dp < dv && dist_add(dp, w as Dist) == dv && sigma[p as usize] != 0.0 {
                delta[p as usize] += sigma[p as usize] / sigma[v as usize] * term;
            }
        }
    }
    if (source as usize) < n {
        delta[source as usize] = 0.0;
    }
    delta
}

/// Betweenness from per-source distance rows: sums
/// [`dependency_from_row`] vectors in increasing source order and halves
/// (undirected convention), exactly like [`betweenness_centrality`].
///
/// This is the bit-level contract the incremental metric reproduces: it
/// re-sums its cached per-source vectors in the same source order with the
/// same kernel, so at convergence (rows exact) the two are `==`, not just
/// approximately equal.
pub fn betweenness_from_rows<R, F, I>(n: usize, mut row_of: R, succ: F) -> Vec<f64>
where
    R: FnMut(VertexId) -> Vec<Dist>,
    F: Fn(VertexId) -> I + Copy,
    I: Iterator<Item = (VertexId, Weight)>,
{
    let mut acc = vec![0.0f64; n];
    for s in 0..n as VertexId {
        let row = row_of(s);
        let dep = dependency_from_row(s, &row, succ);
        for (a, d) in acc.iter_mut().zip(dep) {
            *a += d;
        }
    }
    acc.iter_mut().for_each(|x| *x /= 2.0);
    acc
}

/// Exact Brandes betweenness with deterministic `(distance, id)`
/// tie-breaks: the correctness oracle for the engine's incremental
/// betweenness metric. Agrees with [`betweenness_centrality`] up to
/// floating-point association; unlike it, the result is a bit-exact
/// function of the graph alone (no reduction-order dependence).
///
/// `GraphStore`-generic callers use `aaa_store::algo::betweenness_exact`,
/// which wraps this kernel (the trait lives downstream of this crate).
pub fn betweenness_exact_det(g: &Csr) -> Vec<f64> {
    betweenness_from_rows(g.num_vertices(), |s| crate::sssp::dijkstra(g, s), |v| g.neighbors(v))
}

/// Local clustering coefficient of each vertex (unweighted triangles).
pub fn clustering_coefficients(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            let nbrs = g.targets(v);
            let k = nbrs.len();
            if k < 2 {
                return 0.0;
            }
            let mut closed = 0usize;
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if g.targets(a).contains(&b) {
                        closed += 1;
                    }
                }
            }
            2.0 * closed as f64 / (k * (k - 1)) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdjGraph;

    fn path4() -> Csr {
        let mut g = AdjGraph::with_vertices(4);
        for v in 0..3 {
            g.add_edge(v, v + 1, 1).unwrap();
        }
        Csr::from_adj(&g)
    }

    #[test]
    fn degree_centrality_of_path() {
        let c = degree_centrality(&path4());
        assert!((c[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((c[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn betweenness_of_path() {
        // Path 0-1-2-3: pairs through vertex 1: (0,2), (0,3) -> 2.
        // Through vertex 2: (0,3), (1,3) -> 2. Endpoints: 0.
        let b = betweenness_centrality(&path4());
        assert!((b[0]).abs() < 1e-9);
        assert!((b[1] - 2.0).abs() < 1e-9, "{b:?}");
        assert!((b[2] - 2.0).abs() < 1e-9);
        assert!((b[3]).abs() < 1e-9);
    }

    #[test]
    fn betweenness_of_star_center() {
        let mut g = AdjGraph::with_vertices(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf, 1).unwrap();
        }
        let b = betweenness_centrality(&Csr::from_adj(&g));
        // Center mediates all C(4,2) = 6 leaf pairs.
        assert!((b[0] - 6.0).abs() < 1e-9, "{b:?}");
        assert!(b[1..].iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn betweenness_splits_over_equal_paths() {
        // Square 0-1-2-3-0: two equal shortest paths between opposite
        // corners; each midpoint gets 1/2 per opposite pair.
        let mut g = AdjGraph::with_vertices(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.add_edge(u, v, 1).unwrap();
        }
        let b = betweenness_centrality(&Csr::from_adj(&g));
        for &x in &b {
            assert!((x - 0.5).abs() < 1e-9, "{b:?}");
        }
    }

    #[test]
    fn weighted_betweenness_prefers_light_paths() {
        // 0-1 (1), 1-2 (1), 0-2 (10): all 0..2 traffic goes through 1.
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(0, 2, 10).unwrap();
        let b = betweenness_centrality(&Csr::from_adj(&g));
        assert!((b[1] - 1.0).abs() < 1e-9, "{b:?}");
    }

    #[test]
    fn deterministic_betweenness_matches_parallel_reference() {
        let mut square = AdjGraph::with_vertices(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            square.add_edge(u, v, 1).unwrap();
        }
        let mut star = AdjGraph::with_vertices(5);
        for leaf in 1..5 {
            star.add_edge(0, leaf, 1).unwrap();
        }
        let mut weighted = AdjGraph::with_vertices(3);
        weighted.add_edge(0, 1, 1).unwrap();
        weighted.add_edge(1, 2, 1).unwrap();
        weighted.add_edge(0, 2, 10).unwrap();
        for g in [path4(), Csr::from_adj(&square), Csr::from_adj(&star), Csr::from_adj(&weighted)] {
            let det = betweenness_exact_det(&g);
            let par = betweenness_centrality(&g);
            for (a, b) in det.iter().zip(&par) {
                assert!((a - b).abs() < 1e-9, "{det:?} vs {par:?}");
            }
        }
    }

    #[test]
    fn dependency_from_row_is_backend_independent() {
        // Same rows fed through AdjGraph and Csr neighbor iterators must
        // produce bit-identical dependency vectors.
        let mut g = AdjGraph::with_vertices(6);
        for (u, v, w) in
            [(0, 1, 2), (1, 2, 2), (0, 2, 4), (2, 3, 1), (3, 4, 3), (1, 4, 6), (4, 5, 1)]
        {
            g.add_edge(u, v, w).unwrap();
        }
        let csr = Csr::from_adj(&g);
        for s in 0..6 {
            let row = crate::sssp::dijkstra(&csr, s);
            let via_csr = dependency_from_row(s, &row, |v| csr.neighbors(v));
            let via_adj = dependency_from_row(s, &row, |v| g.neighbors(v).iter().copied());
            assert_eq!(via_csr, via_adj, "source {s}");
            assert!(via_csr.iter().all(|d| d.is_finite()));
            assert_eq!(via_csr[s as usize], 0.0);
        }
    }

    #[test]
    fn dependency_from_partial_row_skips_unwitnessed_vertices() {
        // Admissible-but-stale row: vertex 3's entry is finite but not
        // witnessed by any tight edge, so it carries no path mass and
        // contributes no dependency.
        let g = path4();
        let mut row = crate::sssp::dijkstra(&g, 0);
        row[3] = 100; // admissible (≥ exact 3), inconsistent
        let dep = dependency_from_row(0, &row, |v| g.neighbors(v));
        // Only pairs (0,1),(0,2) remain: delta[1] counts vertex 2 once.
        assert_eq!(dep[1], 1.0);
        assert_eq!(dep[2], 0.0);
        assert_eq!(dep[3], 0.0);
        // All-INF row (source not yet reached) yields zeros.
        let zeros = dependency_from_row(2, &[INF; 4], |v| g.neighbors(v));
        assert_eq!(zeros, vec![0.0; 4]);
    }

    #[test]
    fn betweenness_from_rows_matches_exact_det_bitwise() {
        let mut g = AdjGraph::with_vertices(7);
        for (u, v, w) in
            [(0, 1, 1), (1, 2, 1), (2, 3, 2), (3, 4, 1), (4, 0, 3), (2, 5, 1), (5, 6, 1), (6, 3, 1)]
        {
            g.add_edge(u, v, w).unwrap();
        }
        let csr = Csr::from_adj(&g);
        let oracle = betweenness_exact_det(&csr);
        // Re-summing the same per-source vectors from pre-gathered rows
        // (the incremental metric's contract) is bit-identical.
        let rows: Vec<Vec<Dist>> = (0..7).map(|s| crate::sssp::dijkstra(&csr, s)).collect();
        let from_rows =
            betweenness_from_rows(7, |s| rows[s as usize].clone(), |v| csr.neighbors(v));
        assert_eq!(oracle, from_rows);
    }

    #[test]
    fn eigenvector_centrality_peaks_at_hub() {
        let mut g = AdjGraph::with_vertices(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf, 1).unwrap();
        }
        let e = eigenvector_centrality(&Csr::from_adj(&g), 200, 1e-12);
        assert!(e[0] > e[1]);
        assert!((e[1] - e[4]).abs() < 1e-9);
        // Edgeless graph.
        let z = eigenvector_centrality(&Csr::from_adj(&AdjGraph::with_vertices(3)), 10, 1e-9);
        assert_eq!(z, vec![0.0; 3]);
    }

    #[test]
    fn clustering_of_triangle_and_path() {
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(0, 2, 1).unwrap();
        let c = clustering_coefficients(&Csr::from_adj(&g));
        assert_eq!(c, vec![1.0, 1.0, 1.0]);
        let c = clustering_coefficients(&path4());
        assert_eq!(c, vec![0.0; 4]);
    }
}
