//! Growable undirected weighted adjacency-list graph.
//!
//! This is the mutable graph representation used everywhere a graph can
//! change: the dynamic-update streams of the paper (vertex additions, edge
//! additions/deletions, weight changes) all operate on [`AdjGraph`].
//! Compute-heavy read-only phases snapshot it into a [`crate::Csr`].

use crate::{GraphError, VertexId, Weight};

/// An undirected, weighted graph stored as per-vertex adjacency lists.
///
/// Invariants maintained by every mutating method:
/// * no self-loops,
/// * no parallel edges (at most one `(u, v)` entry),
/// * symmetric adjacency: `v ∈ adj(u)` iff `u ∈ adj(v)` with equal weight,
/// * all edge weights are strictly positive,
/// * each neighbor list is sorted by target id, so every backend
///   (adjacency, CSR, compressed) yields the same successor order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdjGraph {
    adj: Vec<Vec<(VertexId, Weight)>>,
    num_edges: usize,
}

impl AdjGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n], num_edges: 0 }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Appends a new isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = self.adj.len() as VertexId;
        self.adj.push(Vec::new());
        id
    }

    /// Appends `k` isolated vertices, returning the id of the first.
    pub fn add_vertices(&mut self, k: usize) -> VertexId {
        let first = self.adj.len() as VertexId;
        self.adj.resize_with(self.adj.len() + k, Vec::new);
        first
    }

    #[inline]
    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if (v as usize) < self.adj.len() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange { vertex: v, len: self.adj.len() })
        }
    }

    /// Position of `t` in the sorted neighbor list of `v`: `Ok(i)` if
    /// present at `i`, `Err(i)` with the insertion point otherwise.
    #[inline]
    fn neighbor_pos(&self, v: VertexId, t: VertexId) -> Result<usize, usize> {
        self.adj[v as usize].binary_search_by_key(&t, |&(n, _)| n)
    }

    /// Adds the undirected edge `(u, v)` with weight `w`.
    ///
    /// Rejects self-loops, duplicates, zero weights and out-of-range ids.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight { u, v });
        }
        let Err(i) = self.neighbor_pos(u, v) else {
            return Err(GraphError::DuplicateEdge { u, v });
        };
        let Err(j) = self.neighbor_pos(v, u) else {
            return Err(GraphError::DuplicateEdge { u, v });
        };
        self.adj[u as usize].insert(i, (v, w));
        self.adj[v as usize].insert(j, (u, w));
        self.num_edges += 1;
        Ok(())
    }

    /// Adds `(u, v, w)` if absent; if present keeps the smaller weight.
    /// Returns `true` if the graph changed. Used by generators that may
    /// propose the same pair twice.
    pub fn add_or_min_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        w: Weight,
    ) -> Result<bool, GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight { u, v });
        }
        match self.edge_weight(u, v) {
            None => {
                self.add_edge(u, v, w)?;
                Ok(true)
            }
            Some(old) if w < old => {
                self.set_weight(u, v, w)?;
                Ok(true)
            }
            Some(_) => Ok(false),
        }
    }

    /// Removes the undirected edge `(u, v)`.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        match (self.neighbor_pos(u, v), self.neighbor_pos(v, u)) {
            (Ok(i), Ok(j)) => {
                self.adj[u as usize].remove(i);
                self.adj[v as usize].remove(j);
                self.num_edges -= 1;
                Ok(())
            }
            _ => Err(GraphError::MissingEdge { u, v }),
        }
    }

    /// Changes the weight of an existing edge.
    pub fn set_weight(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if w == 0 {
            return Err(GraphError::ZeroWeight { u, v });
        }
        match (self.neighbor_pos(u, v), self.neighbor_pos(v, u)) {
            (Ok(i), Ok(j)) => {
                self.adj[u as usize][i].1 = w;
                self.adj[v as usize][j].1 = w;
                Ok(())
            }
            _ => Err(GraphError::MissingEdge { u, v }),
        }
    }

    /// True if the edge `(u, v)` exists. O(log deg(u)).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj.get(u as usize).is_some_and(|l| l.binary_search_by_key(&v, |&(n, _)| n).is_ok())
    }

    /// Weight of edge `(u, v)` if present. O(log deg(u)).
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let l = self.adj.get(u as usize)?;
        l.binary_search_by_key(&v, |&(n, _)| n).ok().map(|i| l[i].1)
    }

    /// Neighbors of `v` with weights, sorted by neighbor id. Panics on
    /// out-of-range `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, Weight)] {
        &self.adj[v as usize]
    }

    /// Heap bytes held by the adjacency structure (capacity, not length, so
    /// over-allocation is visible). Used for the bytes/edge comparison
    /// across graph backends.
    pub fn memory_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(VertexId, Weight)>();
        let header = std::mem::size_of::<Vec<(VertexId, Weight)>>();
        self.adj.capacity() * header + self.adj.iter().map(|l| l.capacity() * entry).sum::<usize>()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.adj.len() as VertexId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v, w)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, l)| {
            let u = u as VertexId;
            l.iter().filter_map(move |&(v, w)| if u < v { Some((u, v, w)) } else { None })
        })
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_weight(&self) -> u64 {
        self.edges().map(|(_, _, w)| w as u64).sum()
    }

    /// Weighted degree (sum of incident edge weights) of `v`.
    pub fn weighted_degree(&self, v: VertexId) -> u64 {
        self.adj[v as usize].iter().map(|&(_, w)| w as u64).sum()
    }

    /// Extracts the subgraph induced by `keep` (ids are re-numbered densely
    /// in the order given). Returns the subgraph and the mapping
    /// `new id -> old id`.
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> (AdjGraph, Vec<VertexId>) {
        let mut old_to_new = vec![VertexId::MAX; self.num_vertices()];
        for (new, &old) in keep.iter().enumerate() {
            old_to_new[old as usize] = new as VertexId;
        }
        let mut g = AdjGraph::with_vertices(keep.len());
        for &old_u in keep {
            let new_u = old_to_new[old_u as usize];
            for &(old_v, w) in self.neighbors(old_u) {
                let new_v = old_to_new[old_v as usize];
                if new_v != VertexId::MAX && new_u < new_v {
                    g.add_edge(new_u, new_v, w).expect("induced subgraph edge must be valid");
                }
            }
        }
        (g, keep.to_vec())
    }

    /// Validates all structural invariants. Intended for tests and debug
    /// assertions; O(V + E·deg).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.adj.len();
        let mut directed = 0usize;
        for (u, l) in self.adj.iter().enumerate() {
            if !l.windows(2).all(|p| p[0].0 < p[1].0) {
                return Err(format!("neighbor list of {u} is not sorted by id"));
            }
            let mut seen = Vec::with_capacity(l.len());
            for &(v, w) in l {
                if v as usize >= n {
                    return Err(format!("vertex {u} has out-of-range neighbor {v}"));
                }
                if v as usize == u {
                    return Err(format!("self-loop on {u}"));
                }
                if w == 0 {
                    return Err(format!("zero-weight edge ({u}, {v})"));
                }
                if seen.contains(&v) {
                    return Err(format!("parallel edge ({u}, {v})"));
                }
                seen.push(v);
                match self.edge_weight(v, u as VertexId) {
                    Some(back) if back == w => {}
                    Some(back) => {
                        return Err(format!("asymmetric weight ({u},{v}): {w} vs {back}"))
                    }
                    None => return Err(format!("missing reverse edge ({v}, {u})")),
                }
                directed += 1;
            }
        }
        if directed != 2 * self.num_edges {
            return Err(format!(
                "edge count mismatch: counted {} directed arcs, expected {}",
                directed,
                2 * self.num_edges
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> AdjGraph {
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 2).unwrap();
        g.add_edge(0, 2, 3).unwrap();
        g
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.edge_weight(2, 1), Some(2));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 2));
        g.validate().unwrap();
    }

    #[test]
    fn rejects_self_loop_duplicate_zero_weight() {
        let mut g = AdjGraph::with_vertices(2);
        assert_eq!(g.add_edge(0, 0, 1), Err(GraphError::SelfLoop { vertex: 0 }));
        assert_eq!(g.add_edge(0, 1, 0), Err(GraphError::ZeroWeight { u: 0, v: 1 }));
        g.add_edge(0, 1, 1).unwrap();
        assert_eq!(g.add_edge(1, 0, 2), Err(GraphError::DuplicateEdge { u: 1, v: 0 }));
        assert_eq!(g.add_edge(0, 5, 1), Err(GraphError::VertexOutOfRange { vertex: 5, len: 2 }));
    }

    #[test]
    fn add_or_min_edge_keeps_minimum() {
        let mut g = AdjGraph::with_vertices(2);
        assert!(g.add_or_min_edge(0, 1, 5).unwrap());
        assert!(!g.add_or_min_edge(0, 1, 7).unwrap());
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert!(g.add_or_min_edge(1, 0, 2).unwrap());
        assert_eq!(g.edge_weight(0, 1), Some(2));
        assert_eq!(g.num_edges(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn remove_and_set_weight() {
        let mut g = triangle();
        g.set_weight(0, 1, 9).unwrap();
        assert_eq!(g.edge_weight(1, 0), Some(9));
        g.remove_edge(1, 2).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.remove_edge(1, 2), Err(GraphError::MissingEdge { u: 1, v: 2 }));
        g.validate().unwrap();
    }

    #[test]
    fn vertex_addition_grows_graph() {
        let mut g = triangle();
        let v = g.add_vertex();
        assert_eq!(v, 3);
        g.add_edge(v, 0, 4).unwrap();
        assert_eq!(g.degree(v), 1);
        let first = g.add_vertices(3);
        assert_eq!(first, 4);
        assert_eq!(g.num_vertices(), 7);
        g.validate().unwrap();
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 3), (1, 2, 2)]);
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.weighted_degree(0), 4);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[2, 0]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 1);
        // old 2 -> new 0, old 0 -> new 1; edge (0,2,3) survives.
        assert_eq!(sub.edge_weight(0, 1), Some(3));
        assert_eq!(map, vec![2, 0]);
        sub.validate().unwrap();
    }

    #[test]
    fn neighbor_lists_stay_sorted() {
        let mut g = AdjGraph::with_vertices(6);
        // Insert around vertex 0 in scrambled order; list must come out sorted.
        for v in [4, 1, 5, 2, 3] {
            g.add_edge(0, v, v).unwrap();
        }
        assert_eq!(g.neighbors(0), &[(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]);
        // Order-preserving removal keeps the invariant.
        g.remove_edge(0, 3).unwrap();
        assert_eq!(g.neighbors(0), &[(1, 1), (2, 2), (4, 4), (5, 5)]);
        g.add_or_min_edge(0, 3, 7).unwrap();
        assert_eq!(g.neighbors(0).iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
        g.validate().unwrap();
    }

    #[test]
    fn memory_bytes_tracks_entries() {
        let g = triangle();
        // At least 6 directed entries of 8 bytes plus 3 Vec headers.
        assert!(g.memory_bytes() >= 6 * 8);
        let empty = AdjGraph::new();
        assert_eq!(empty.memory_bytes(), 0);
    }

    #[test]
    fn empty_graph_behaves() {
        let g = AdjGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
        g.validate().unwrap();
    }
}
