//! Structural statistics: connected components, degree summaries.

use crate::{Csr, VertexId};

/// Result of a connected-components labelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component label of each vertex (dense, 0-based).
    pub label: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
    /// Size of each component.
    pub sizes: Vec<usize>,
}

/// Labels connected components with iterative BFS (no recursion, so deep
/// graphs cannot overflow the stack).
pub fn connected_components(g: &Csr) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as VertexId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        let comp = sizes.len() as u32;
        let mut size = 0usize;
        label[start as usize] = comp;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &t in g.targets(v) {
                if label[t as usize] == u32::MAX {
                    label[t as usize] = comp;
                    queue.push_back(t);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, num_components: sizes.len(), sizes }
}

/// Degree summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// Fraction of vertices with degree ≥ 2 × mean (a cheap skewness proxy).
    pub heavy_fraction: f64,
}

/// Computes degree statistics. Returns `None` for an empty graph.
pub fn degree_stats(g: &Csr) -> Option<DegreeStats> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let degrees: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let min = *degrees.iter().min().unwrap();
    let max = *degrees.iter().max().unwrap();
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let heavy = degrees.iter().filter(|&&d| d as f64 >= 2.0 * mean && mean > 0.0).count();
    Some(DegreeStats { min, max, mean, heavy_fraction: heavy as f64 / n as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdjGraph;

    #[test]
    fn components_of_two_triangles() {
        let mut g = AdjGraph::with_vertices(7);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 1).unwrap();
        }
        let c = connected_components(&Csr::from_adj(&g));
        assert_eq!(c.num_components, 3); // two triangles + isolated 6
        assert_eq!(c.label[0], c.label[2]);
        assert_ne!(c.label[0], c.label[3]);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
    }

    #[test]
    fn single_component_path() {
        let mut g = AdjGraph::with_vertices(4);
        for v in 0..3 {
            g.add_edge(v, v + 1, 1).unwrap();
        }
        let c = connected_components(&Csr::from_adj(&g));
        assert_eq!(c.num_components, 1);
        assert_eq!(c.sizes, vec![4]);
    }

    #[test]
    fn degree_stats_basics() {
        let mut g = AdjGraph::with_vertices(4);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(0, 2, 1).unwrap();
        g.add_edge(0, 3, 1).unwrap();
        let s = degree_stats(&Csr::from_adj(&g)).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert!((s.heavy_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_has_no_stats() {
        assert!(degree_stats(&Csr::from_adj(&AdjGraph::new())).is_none());
    }
}
