//! Graph file I/O: whitespace edge lists and a minimal Pajek `.net` subset.
//!
//! The paper generated inputs with Pajek; the `.net` support here covers the
//! `*Vertices` / `*Edges` sections that tool emits for undirected weighted
//! graphs, so exported datasets can round-trip.

use crate::{AdjGraph, GraphBuilder, GraphError, VertexId, Weight};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a whitespace-separated edge list: one `u v [w]` triple per line,
/// `#`-prefixed comment lines skipped, weight defaults to 1.
pub fn read_edge_list<R: Read>(reader: R) -> Result<AdjGraph, GraphError> {
    let mut builder = GraphBuilder::default();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |s: Option<&str>, what: &str| -> Result<u64, GraphError> {
            s.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let u = parse(it.next(), "source")? as VertexId;
        let v = parse(it.next(), "target")? as VertexId;
        let w = match it.next() {
            Some(s) => s.parse::<Weight>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad weight: {e}"),
            })?,
            None => 1,
        };
        builder.edge(u, v, w);
    }
    builder.build()
}

/// Writes a graph as a `u v w` edge list.
pub fn write_edge_list<W: Write>(g: &AdjGraph, writer: W) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# vertices: {}  edges: {}", g.num_vertices(), g.num_edges())?;
    for (u, v, w) in g.edges() {
        writeln!(out, "{u} {v} {w}")?;
    }
    out.flush()?;
    Ok(())
}

/// Reads the Pajek `.net` subset: a `*Vertices n` header followed by an
/// `*Edges` (or `*Arcs`, treated as undirected) section of
/// `u v [w]` lines with **1-based** vertex ids.
pub fn read_pajek<R: Read>(reader: R) -> Result<AdjGraph, GraphError> {
    let buf = BufReader::new(reader);
    let mut builder = GraphBuilder::default();
    let mut in_edges = false;
    let mut declared_n: Option<usize> = None;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if lower.starts_with("*vertices") {
            let n: usize = lower
                .split_whitespace()
                .nth(1)
                .ok_or_else(|| GraphError::Parse {
                    line: lineno + 1,
                    message: "missing vertex count".into(),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad vertex count: {e}"),
                })?;
            declared_n = Some(n);
            builder.grow_to(n);
            in_edges = false;
            continue;
        }
        if lower.starts_with("*edges") || lower.starts_with("*arcs") {
            in_edges = true;
            continue;
        }
        if lower.starts_with('*') {
            in_edges = false; // unsupported section (e.g. *Partition): skip
            continue;
        }
        if !in_edges {
            continue; // vertex label lines — ids are positional, skip
        }
        let mut it = line.split_whitespace();
        let parse_id = |s: Option<&str>| -> Result<VertexId, GraphError> {
            let raw: u64 = s
                .ok_or_else(|| GraphError::Parse {
                    line: lineno + 1,
                    message: "missing endpoint".into(),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad endpoint: {e}"),
                })?;
            if raw == 0 {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: "Pajek ids are 1-based".into(),
                });
            }
            Ok((raw - 1) as VertexId)
        };
        let u = parse_id(it.next())?;
        let v = parse_id(it.next())?;
        let w = match it.next() {
            // Pajek weights may be floats; round to the nearest positive int.
            Some(s) => {
                let f: f64 = s.parse().map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad weight: {e}"),
                })?;
                (f.round().max(1.0)) as Weight
            }
            None => 1,
        };
        builder.edge(u, v, w);
    }
    if let Some(n) = declared_n {
        if builder.num_vertices() > n {
            return Err(GraphError::Parse {
                line: 0,
                message: format!("edge references vertex beyond declared count {n}"),
            });
        }
    }
    builder.build()
}

/// Writes a graph in the Pajek `.net` subset (1-based ids).
pub fn write_pajek<W: Write>(g: &AdjGraph, writer: W) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "*Vertices {}", g.num_vertices())?;
    writeln!(out, "*Edges")?;
    for (u, v, w) in g.edges() {
        writeln!(out, "{} {} {}", u + 1, v + 1, w)?;
    }
    out.flush()?;
    Ok(())
}

/// Convenience: reads an edge-list file from disk.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<AdjGraph, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Convenience: writes an edge-list file to disk.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &AdjGraph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let mut g = AdjGraph::with_vertices(4);
        g.add_edge(0, 1, 2).unwrap();
        g.add_edge(2, 3, 5).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.num_edges(), 2);
        assert_eq!(back.edge_weight(0, 1), Some(2));
        assert_eq!(back.edge_weight(2, 3), Some(5));
    }

    #[test]
    fn edge_list_defaults_weight_and_skips_comments() {
        let text = "# comment\n0 1\n\n1 2 7\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(1, 2), Some(7));
    }

    #[test]
    fn edge_list_reports_parse_errors_with_line() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pajek_roundtrip() {
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 2, 4).unwrap();
        let mut buf = Vec::new();
        write_pajek(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("*Vertices 3"));
        assert!(text.contains("1 3 4"));
        let back = read_pajek(&buf[..]).unwrap();
        assert_eq!(back.num_vertices(), 3);
        assert_eq!(back.edge_weight(0, 2), Some(4));
    }

    #[test]
    fn pajek_rejects_zero_based_and_overflow_ids() {
        let err = read_pajek("*Vertices 2\n*Edges\n0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
        let err = read_pajek("*Vertices 2\n*Edges\n1 5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn pajek_parses_float_weights_and_isolated_vertices() {
        let g = read_pajek("*Vertices 4\n*Edges\n1 2 2.6\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn pajek_ignores_unsupported_sections() {
        let text = "*Vertices 2\n1 \"a\"\n2 \"b\"\n*Partition x\n1\n2\n*Edges\n1 2\n";
        let g = read_pajek(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
