//! Closeness centrality (the paper's Eq. 1) and comparison utilities.
//!
//! The paper defines `C(v) = 1 / Σ_u d(v, u)`. On disconnected graphs that
//! sum is infinite; like most SNA tools we sum over *reachable* vertices
//! only and document the convention. A vertex that reaches nothing has
//! centrality 0.

use crate::apsp::DistMatrix;
use crate::{Csr, Dist, INF};
use rayon::prelude::*;

/// Closeness of every vertex from a full distance matrix.
pub fn closeness_from_matrix(m: &DistMatrix) -> Vec<f64> {
    (0..m.n()).map(|v| closeness_from_row(m.row(v as u32))).collect()
}

/// Closeness of a single vertex given its distance row.
///
/// `1 / Σ d(v,u)` over reachable `u ≠ v`; 0.0 if nothing is reachable.
pub fn closeness_from_row(row: &[Dist]) -> f64 {
    let mut sum: u64 = 0;
    let mut reachable = 0u64;
    for &d in row {
        if d != INF && d != 0 {
            sum += d as u64;
            reachable += 1;
        }
    }
    if reachable == 0 || sum == 0 {
        0.0
    } else {
        1.0 / sum as f64
    }
}

/// Exact closeness for a graph, computed via parallel Dijkstra without
/// materializing the full matrix (used at paper scale where n² is large).
pub fn closeness_exact(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    (0..n)
        .into_par_iter()
        .map_init(
            || vec![INF; n],
            |buf, s| {
                crate::sssp::dijkstra_into(g, s as u32, buf);
                closeness_from_row(buf)
            },
        )
        .collect()
}

/// Mean absolute relative error between an estimate and the exact values.
/// Pairs where both are zero contribute zero; an exact zero with a nonzero
/// estimate contributes the absolute estimate.
pub fn mean_relative_error(estimate: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(estimate.len(), exact.len(), "length mismatch");
    if exact.is_empty() {
        return 0.0;
    }
    let total: f64 = estimate
        .iter()
        .zip(exact)
        .map(|(&e, &x)| if x == 0.0 { e.abs() } else { (e - x).abs() / x })
        .sum();
    total / exact.len() as f64
}

/// Indices of the top-`k` vertices by centrality, ties broken by id.
/// `total_cmp` keeps the order total (and therefore deterministic) even
/// on pathological values — `partial_cmp`'s `Equal` fallback for NaN made
/// the comparator inconsistent, which `sort_by` may answer with an
/// arbitrary permutation. The maintained top-k index in `aaa-core` must
/// agree with this oracle exactly on every input.
pub fn top_k(centrality: &[f64], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..centrality.len() as u32).collect();
    idx.sort_by(|&a, &b| centrality[b as usize].total_cmp(&centrality[a as usize]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apsp::apsp_dijkstra, AdjGraph};

    fn star() -> Csr {
        // Star with center 0 and leaves 1..=4, unit weights.
        let mut g = AdjGraph::with_vertices(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf, 1).unwrap();
        }
        Csr::from_adj(&g)
    }

    #[test]
    fn star_center_is_most_central() {
        let c = closeness_exact(&star());
        // Center: 4 neighbors at distance 1 -> 1/4.
        assert!((c[0] - 0.25).abs() < 1e-12);
        // Leaf: 1 + 2+2+2 = 7 -> 1/7.
        assert!((c[1] - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(top_k(&c, 1), vec![0]);
    }

    #[test]
    fn matrix_and_direct_agree() {
        let g = star();
        let m = apsp_dijkstra(&g);
        assert_eq!(closeness_from_matrix(&m), closeness_exact(&g));
    }

    #[test]
    fn isolated_vertex_has_zero_closeness() {
        let g = Csr::from_adj(&AdjGraph::with_vertices(3));
        let c = closeness_exact(&g);
        assert_eq!(c, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn error_metric_basics() {
        assert_eq!(mean_relative_error(&[], &[]), 0.0);
        assert!((mean_relative_error(&[1.0, 2.0], &[1.0, 2.0])).abs() < 1e-12);
        let e = mean_relative_error(&[0.5, 2.0], &[1.0, 2.0]);
        assert!((e - 0.25).abs() < 1e-12);
        // exact zero, estimate nonzero
        let e = mean_relative_error(&[0.5], &[0.0]);
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_k_breaks_ties_by_id() {
        let c = vec![0.3, 0.5, 0.5, 0.1];
        assert_eq!(top_k(&c, 3), vec![1, 2, 0]);
        assert_eq!(top_k(&c, 10).len(), 4);
    }

    #[test]
    fn top_k_is_deterministic_on_all_equal_values() {
        // A run of equal values must come back in id order — the tie rule
        // holds on every path, not just between distinct values.
        let c = vec![0.25; 9];
        assert_eq!(top_k(&c, 5), vec![0, 1, 2, 3, 4]);
        // Mixed ties: each equal-value group is ordered by id.
        let c = vec![0.5, 0.1, 0.5, 0.1, 0.9];
        assert_eq!(top_k(&c, 5), vec![4, 0, 2, 1, 3]);
    }

    #[test]
    fn top_k_orders_totally_even_with_nans() {
        // total_cmp sorts NaN after every finite value (for positive
        // NaNs), so the order stays a deterministic total order rather
        // than an arbitrary permutation from an inconsistent comparator.
        let c = vec![0.2, f64::NAN, 0.7, f64::NAN, 0.2];
        assert_eq!(top_k(&c, 5), vec![1, 3, 2, 0, 4]);
    }
}
