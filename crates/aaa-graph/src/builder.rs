//! Convenience builder for assembling graphs from edge streams.

use crate::{AdjGraph, GraphError, VertexId, Weight};

/// Accumulates edges (deduplicating, keeping minimum weights) and produces an
/// [`AdjGraph`]. Unlike [`AdjGraph::add_edge`], feeding the same pair twice
/// is not an error here — generators and file readers use this.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder with `n` initial vertices.
    pub fn with_vertices(n: usize) -> Self {
        Self { n, edges: Vec::new() }
    }

    /// Ensures the builder has at least `n` vertices.
    pub fn grow_to(&mut self, n: usize) -> &mut Self {
        self.n = self.n.max(n);
        self
    }

    /// Number of vertices currently declared.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Queues an undirected edge; vertices are grown on demand.
    /// Self-loops are silently dropped (real-world edge lists contain them).
    pub fn edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> &mut Self {
        if u != v {
            self.n = self.n.max(u.max(v) as usize + 1);
            self.edges.push((u, v, w));
        }
        self
    }

    /// Queues an unweighted (weight-1) edge.
    pub fn unweighted_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.edge(u, v, 1)
    }

    /// Builds the graph. Duplicate pairs keep the minimum weight.
    /// Zero-weight edges are rejected.
    pub fn build(self) -> Result<AdjGraph, GraphError> {
        let mut g = AdjGraph::with_vertices(self.n);
        for (u, v, w) in self.edges {
            g.add_or_min_edge(u, v, w)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_grows() {
        let mut b = GraphBuilder::with_vertices(2);
        b.edge(0, 1, 3).edge(1, 0, 2).edge(4, 2, 1).edge(3, 3, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(2));
        assert!(g.has_edge(2, 4));
        // self-loop (3,3) dropped
        assert_eq!(g.degree(3), 0);
        g.validate().unwrap();
    }

    #[test]
    fn zero_weight_rejected_at_build() {
        let mut b = GraphBuilder::default();
        b.edge(0, 1, 0);
        assert!(b.build().is_err());
    }

    #[test]
    fn unweighted_edges_have_weight_one() {
        let mut b = GraphBuilder::default();
        b.unweighted_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(1));
    }
}
