//! Single-source shortest paths: binary-heap Dijkstra and unweighted BFS.
//!
//! These are the reference kernels. The engine's IA phase in `aaa-core` runs
//! the same Dijkstra per local vertex (the paper uses a multithreaded
//! Dijkstra there, §IV.B), and the test suites use them as ground truth.

use crate::{dist_add, Csr, Dist, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Dijkstra from `source` over a CSR graph. Returns the distance to every
/// vertex (`INF` when unreachable).
pub fn dijkstra(g: &Csr, source: VertexId) -> Vec<Dist> {
    let mut dist = vec![INF; g.num_vertices()];
    dijkstra_into(g, source, &mut dist);
    dist
}

/// Dijkstra writing into a caller-provided buffer (reused across sources to
/// avoid reallocating in the hot APSP loops). The buffer is reset to `INF`.
pub fn dijkstra_into(g: &Csr, source: VertexId, dist: &mut [Dist]) {
    debug_assert_eq!(dist.len(), g.num_vertices());
    dist.fill(INF);
    if g.num_vertices() == 0 {
        return;
    }
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        for (t, w) in g.neighbors(v) {
            let nd = dist_add(d, w as Dist);
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Reverse((nd, t)));
            }
        }
    }
}

/// Breadth-first search distances (hop counts) from `source`.
pub fn bfs(g: &Csr, source: VertexId) -> Vec<Dist> {
    let mut dist = vec![INF; g.num_vertices()];
    if g.num_vertices() == 0 {
        return dist;
    }
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for t in g.targets(v) {
            if dist[*t as usize] == INF {
                dist[*t as usize] = d + 1;
                queue.push_back(*t);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdjGraph;

    /// 0 -1- 1 -1- 2    3 (isolated)   with shortcut 0-2 weight 5
    fn path_graph() -> Csr {
        let mut g = AdjGraph::with_vertices(4);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(0, 2, 5).unwrap();
        Csr::from_adj(&g)
    }

    #[test]
    fn dijkstra_prefers_shorter_path() {
        let d = dijkstra(&path_graph(), 0);
        assert_eq!(d, vec![0, 1, 2, INF]);
    }

    #[test]
    fn dijkstra_from_middle() {
        let d = dijkstra(&path_graph(), 1);
        assert_eq!(d, vec![1, 0, 1, INF]);
    }

    #[test]
    fn dijkstra_isolated_source() {
        let d = dijkstra(&path_graph(), 3);
        assert_eq!(d, vec![INF, INF, INF, 0]);
    }

    #[test]
    fn bfs_counts_hops_ignoring_weights() {
        let d = bfs(&path_graph(), 0);
        // BFS ignores weights: 0-2 is one hop via the weight-5 edge.
        assert_eq!(d, vec![0, 1, 1, INF]);
    }

    #[test]
    fn dijkstra_into_reuses_buffer() {
        let g = path_graph();
        let mut buf = vec![0; 4];
        dijkstra_into(&g, 2, &mut buf);
        assert_eq!(buf, vec![2, 1, 0, INF]);
        dijkstra_into(&g, 0, &mut buf);
        assert_eq!(buf, vec![0, 1, 2, INF]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_adj(&AdjGraph::new());
        assert!(dijkstra(&g, 0).is_empty());
        assert!(bfs(&g, 0).is_empty());
    }
}
