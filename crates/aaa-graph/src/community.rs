//! Louvain modularity community detection.
//!
//! Substitute for Pajek's Louvain method, which the paper uses to extract
//! community-structured batches of vertices for the CutEdge-PS experiments
//! (§V.B.2). Implements the standard two-phase algorithm: greedy local
//! moving to maximize modularity, then community aggregation, repeated until
//! modularity stops improving.
//!
//! Aggregation requires self-loops (a community's internal weight), which
//! [`AdjGraph`] deliberately forbids, so the levels run on a private
//! [`LevelGraph`] representation.

use crate::{AdjGraph, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;

/// Result of a Louvain run.
#[derive(Debug, Clone)]
pub struct CommunityAssignment {
    /// Community label per vertex, renumbered densely from 0.
    pub label: Vec<u32>,
    /// Number of communities.
    pub num_communities: usize,
    /// Modularity of the final assignment.
    pub modularity: f64,
}

impl CommunityAssignment {
    /// Vertices of each community, in ascending vertex order.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.num_communities];
        for (v, &c) in self.label.iter().enumerate() {
            out[c as usize].push(v as VertexId);
        }
        out
    }
}

/// Newman modularity `Q = Σ_c [ in_c / 2m − (tot_c / 2m)² ]` of a labelling
/// over a weighted undirected graph. Returns 0 for an edgeless graph.
pub fn modularity(g: &AdjGraph, label: &[u32]) -> f64 {
    assert_eq!(label.len(), g.num_vertices(), "label length mismatch");
    LevelGraph::from_adj(g).modularity(label)
}

/// Configuration for [`louvain`].
#[derive(Debug, Clone)]
pub struct LouvainConfig {
    /// Stop when an aggregation level improves modularity by less than this.
    pub min_gain: f64,
    /// Maximum outer (aggregation) levels.
    pub max_levels: usize,
    /// RNG seed for the vertex visiting order.
    pub seed: u64,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        Self { min_gain: 1e-6, max_levels: 16, seed: 0 }
    }
}

/// Runs Louvain community detection.
pub fn louvain(g: &AdjGraph, config: &LouvainConfig) -> CommunityAssignment {
    let n = g.num_vertices();
    if n == 0 {
        return CommunityAssignment { label: Vec::new(), num_communities: 0, modularity: 0.0 };
    }
    let mut membership: Vec<u32> = (0..n as u32).collect();
    let mut level = LevelGraph::from_adj(g);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut best_q = level.modularity(&(0..level.n() as u32).collect::<Vec<_>>());

    for _ in 0..config.max_levels {
        let local = level.one_level(&mut rng);
        let (dense, num_c) = renumber(&local);
        let q = level.modularity(&dense);
        if q - best_q < config.min_gain || num_c == level.n() {
            break;
        }
        best_q = q;
        for m in membership.iter_mut() {
            *m = dense[*m as usize];
        }
        level = level.aggregate(&dense, num_c);
    }

    let (label, num_communities) = renumber(&membership);
    let q = modularity(g, &label);
    CommunityAssignment { label, num_communities, modularity: q }
}

/// Weighted undirected graph with self-loop support, used for the Louvain
/// level hierarchy. `adj` holds no self entries; `self_w[v]` is the
/// self-loop weight of `v` (contributing `2·self_w[v]` to its degree).
struct LevelGraph {
    adj: Vec<Vec<(u32, f64)>>,
    self_w: Vec<f64>,
    /// m = Σ edge weights + Σ self-loop weights.
    total_w: f64,
}

impl LevelGraph {
    fn from_adj(g: &AdjGraph) -> Self {
        let n = g.num_vertices();
        let mut adj = vec![Vec::new(); n];
        for v in g.vertices() {
            adj[v as usize] = g.neighbors(v).iter().map(|&(t, w)| (t, w as f64)).collect();
        }
        Self { adj, self_w: vec![0.0; n], total_w: g.total_weight() as f64 }
    }

    fn n(&self) -> usize {
        self.adj.len()
    }

    /// Weighted degree: adjacent weight plus twice the self-loop.
    fn degree(&self, v: usize) -> f64 {
        self.adj[v].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.self_w[v]
    }

    fn modularity(&self, label: &[u32]) -> f64 {
        let two_m = 2.0 * self.total_w;
        if two_m == 0.0 {
            return 0.0;
        }
        let num_c = label.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut internal = vec![0.0f64; num_c]; // 2 × internal weight
        let mut total = vec![0.0f64; num_c];
        for v in 0..self.n() {
            let cv = label[v] as usize;
            total[cv] += self.degree(v);
            internal[cv] += 2.0 * self.self_w[v];
            for &(t, w) in &self.adj[v] {
                if label[t as usize] as usize == cv {
                    internal[cv] += w; // both endpoints contribute => 2×
                }
            }
        }
        (0..num_c).map(|c| internal[c] / two_m - (total[c] / two_m).powi(2)).sum()
    }

    /// One greedy local-moving pass; returns a (non-dense) label per vertex.
    fn one_level(&self, rng: &mut ChaCha8Rng) -> Vec<u32> {
        let n = self.n();
        let two_m = 2.0 * self.total_w;
        let mut community: Vec<u32> = (0..n as u32).collect();
        if two_m == 0.0 {
            return community;
        }
        let k: Vec<f64> = (0..n).map(|v| self.degree(v)).collect();
        let mut tot: Vec<f64> = k.clone();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);

        let mut neigh_w: FxHashMap<u32, f64> = FxHashMap::default();
        let mut moved = true;
        let mut rounds = 0;
        while moved && rounds < 64 {
            moved = false;
            rounds += 1;
            for &v in &order {
                let cv = community[v];
                neigh_w.clear();
                for &(t, w) in &self.adj[v] {
                    *neigh_w.entry(community[t as usize]).or_insert(0.0) += w;
                }
                // Remove v from its community, then pick the best target
                // (possibly cv again) by ΔQ ∝ w_{v→c} − k_v·tot_c / 2m.
                tot[cv as usize] -= k[v];
                let mut best_c = cv;
                let mut best_gain =
                    neigh_w.get(&cv).copied().unwrap_or(0.0) - k[v] * tot[cv as usize] / two_m;
                for (&c, &w_vc) in neigh_w.iter() {
                    if c == cv {
                        continue;
                    }
                    let gain = w_vc - k[v] * tot[c as usize] / two_m;
                    if gain > best_gain + 1e-12 {
                        best_gain = gain;
                        best_c = c;
                    }
                }
                tot[best_c as usize] += k[v];
                if best_c != cv {
                    community[v] = best_c;
                    moved = true;
                }
            }
        }
        community
    }

    /// Collapses communities into single vertices, keeping internal weight
    /// as self-loops so later levels see correct degrees.
    fn aggregate(&self, dense: &[u32], num_c: usize) -> LevelGraph {
        let mut self_w = vec![0.0f64; num_c];
        let mut acc: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        for v in 0..self.n() {
            let cv = dense[v];
            self_w[cv as usize] += self.self_w[v];
            for &(t, w) in &self.adj[v] {
                let ct = dense[t as usize];
                if cv == ct {
                    // Each intra edge visited from both endpoints: w/2 each.
                    self_w[cv as usize] += w / 2.0;
                } else if cv < ct {
                    *acc.entry((cv, ct)).or_insert(0.0) += w;
                }
            }
        }
        let mut adj = vec![Vec::new(); num_c];
        for (&(u, v), &w) in &acc {
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
        }
        LevelGraph { adj, self_w, total_w: self.total_w }
    }
}

/// Renumbers arbitrary labels to a dense 0-based range.
fn renumber(label: &[u32]) -> (Vec<u32>, usize) {
    let mut map: FxHashMap<u32, u32> = FxHashMap::default();
    let mut out = Vec::with_capacity(label.len());
    for &l in label {
        let next = map.len() as u32;
        out.push(*map.entry(l).or_insert(next));
    }
    (out, map.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{planted_partition, PlantedPartition, WeightModel};

    #[test]
    fn modularity_of_perfect_split() {
        // Two disjoint triangles, correct labels.
        let mut g = AdjGraph::with_vertices(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 1).unwrap();
        }
        let q = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        assert!((q - 0.5).abs() < 1e-9, "q = {q}");
        // Everything in one community: Q = 0.
        let q = modularity(&g, &[0, 0, 0, 0, 0, 0]);
        assert!(q.abs() < 1e-9);
    }

    #[test]
    fn louvain_recovers_disjoint_cliques() {
        let mut g = AdjGraph::with_vertices(8);
        for c in 0..2 {
            let base = c * 4;
            for u in 0..4u32 {
                for v in (u + 1)..4 {
                    g.add_edge(base + u, base + v, 1).unwrap();
                }
            }
        }
        let a = louvain(&g, &LouvainConfig::default());
        assert_eq!(a.num_communities, 2);
        assert_eq!(a.label[0], a.label[3]);
        assert_eq!(a.label[4], a.label[7]);
        assert_ne!(a.label[0], a.label[4]);
        assert!(a.modularity > 0.45);
    }

    #[test]
    fn louvain_recovers_planted_partition() {
        let m = PlantedPartition { communities: 4, size: 40, p_in: 0.4, p_out: 0.005 };
        let (g, truth) = planted_partition(&m, WeightModel::Unit, 7).unwrap();
        let a = louvain(&g, &LouvainConfig::default());
        assert!(a.modularity > 0.5, "modularity {}", a.modularity);
        // Most pairs from the same planted community should share a label.
        let mut same_ok = 0usize;
        let mut same_total = 0usize;
        for u in 0..truth.len() {
            for v in (u + 1)..truth.len() {
                if truth[u] == truth[v] {
                    same_total += 1;
                    if a.label[u] == a.label[v] {
                        same_ok += 1;
                    }
                }
            }
        }
        assert!(same_ok as f64 / same_total as f64 > 0.8);
    }

    #[test]
    fn members_partition_the_vertices() {
        let m = PlantedPartition { communities: 3, size: 20, p_in: 0.5, p_out: 0.02 };
        let (g, _) = planted_partition(&m, WeightModel::Unit, 9).unwrap();
        let a = louvain(&g, &LouvainConfig::default());
        let members = a.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, g.num_vertices());
        assert_eq!(members.len(), a.num_communities);
    }

    #[test]
    fn louvain_improves_over_singletons() {
        let m = PlantedPartition { communities: 5, size: 30, p_in: 0.3, p_out: 0.01 };
        let (g, _) = planted_partition(&m, WeightModel::Unit, 21).unwrap();
        let singleton: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let q0 = modularity(&g, &singleton);
        let a = louvain(&g, &LouvainConfig::default());
        assert!(a.modularity > q0);
    }

    #[test]
    fn empty_and_edgeless() {
        let a = louvain(&AdjGraph::new(), &LouvainConfig::default());
        assert_eq!(a.num_communities, 0);
        let g = AdjGraph::with_vertices(5);
        let a = louvain(&g, &LouvainConfig::default());
        assert_eq!(a.label.len(), 5);
        assert_eq!(a.modularity, 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let m = PlantedPartition { communities: 3, size: 25, p_in: 0.4, p_out: 0.02 };
        let (g, _) = planted_partition(&m, WeightModel::Unit, 13).unwrap();
        let a = louvain(&g, &LouvainConfig::default());
        let b = louvain(&g, &LouvainConfig::default());
        assert_eq!(a.label, b.label);
    }

    #[test]
    fn renumber_is_dense() {
        let (out, n) = renumber(&[7, 3, 7, 9]);
        assert_eq!(out, vec![0, 1, 0, 2]);
        assert_eq!(n, 3);
    }

    #[test]
    fn weighted_edges_influence_modularity() {
        // Path 0-1-2; heavy edge 0-1 means {0,1},{2} beats {0},{1,2}.
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 10).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let q_heavy = modularity(&g, &[0, 0, 1]);
        let q_light = modularity(&g, &[0, 1, 1]);
        assert!(q_heavy > q_light);
    }
}
