//! Reference all-pairs shortest paths.
//!
//! `apsp_dijkstra` is the production reference (parallel over sources, the
//! same structure as the paper's IA phase applied to the whole graph);
//! `floyd_warshall` is a second, independent implementation used to
//! cross-check it in property tests.

use crate::{dist_add, Csr, Dist, VertexId, INF};
use rayon::prelude::*;

/// A dense row-major `n × n` distance matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistMatrix {
    n: usize,
    data: Vec<Dist>,
}

impl DistMatrix {
    /// Creates an `n × n` matrix filled with `INF` except a zero diagonal.
    pub fn new(n: usize) -> Self {
        let mut data = vec![INF; n * n];
        for v in 0..n {
            data[v * n + v] = 0;
        }
        Self { n, data }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance from `u` to `v`.
    #[inline]
    pub fn get(&self, u: VertexId, v: VertexId) -> Dist {
        self.data[u as usize * self.n + v as usize]
    }

    /// Sets the distance from `u` to `v`.
    #[inline]
    pub fn set(&mut self, u: VertexId, v: VertexId, d: Dist) {
        self.data[u as usize * self.n + v as usize] = d;
    }

    /// Row of distances from `u`.
    #[inline]
    pub fn row(&self, u: VertexId) -> &[Dist] {
        &self.data[u as usize * self.n..(u as usize + 1) * self.n]
    }

    /// Mutable row of distances from `u`.
    #[inline]
    pub fn row_mut(&mut self, u: VertexId) -> &mut [Dist] {
        &mut self.data[u as usize * self.n..(u as usize + 1) * self.n]
    }
}

/// APSP by running Dijkstra from every source, parallel over sources.
pub fn apsp_dijkstra(g: &Csr) -> DistMatrix {
    let n = g.num_vertices();
    let mut m = DistMatrix::new(n);
    // Split the backing storage into rows so rayon can fill them in place.
    m.data.par_chunks_mut(n.max(1)).enumerate().for_each(|(s, row)| {
        if s < n {
            crate::sssp::dijkstra_into(g, s as VertexId, row);
        }
    });
    m
}

/// APSP by the Floyd–Warshall algorithm. O(n³); only for cross-checking on
/// small graphs.
pub fn floyd_warshall(g: &Csr) -> DistMatrix {
    let n = g.num_vertices();
    let mut m = DistMatrix::new(n);
    for u in 0..n as VertexId {
        for (v, w) in g.neighbors(u) {
            if (w as Dist) < m.get(u, v) {
                m.set(u, v, w as Dist);
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = m.data[i * n + k];
            if dik == INF {
                continue;
            }
            // Split borrows: row k is read, row i is written.
            let (head, tail) = m.data.split_at_mut(i.max(k) * n);
            let (row_i, row_k) = if i < k {
                (&mut head[i * n..i * n + n], &tail[..n])
            } else if k < i {
                (&mut tail[..n], &head[k * n..k * n + n])
            } else {
                continue; // i == k never improves anything
            };
            for j in 0..n {
                let via = dist_add(dik, row_k[j]);
                if via < row_i[j] {
                    row_i[j] = via;
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdjGraph;

    fn sample() -> Csr {
        // 0-1 (1), 1-2 (2), 2-3 (1), 0-3 (7): best 0->3 is 4 via 1,2.
        let mut g = AdjGraph::with_vertices(5);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 2).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        g.add_edge(0, 3, 7).unwrap();
        Csr::from_adj(&g)
    }

    #[test]
    fn dijkstra_apsp_is_correct() {
        let m = apsp_dijkstra(&sample());
        assert_eq!(m.get(0, 3), 4);
        assert_eq!(m.get(3, 0), 4);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.get(0, 4), INF);
        assert_eq!(m.get(4, 4), 0);
    }

    #[test]
    fn floyd_warshall_matches_dijkstra() {
        let g = sample();
        assert_eq!(apsp_dijkstra(&g), floyd_warshall(&g));
    }

    #[test]
    fn symmetric_on_undirected_graphs() {
        let g = sample();
        let m = apsp_dijkstra(&g);
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(m.get(u, v), m.get(v, u));
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let e = Csr::from_adj(&AdjGraph::new());
        assert_eq!(apsp_dijkstra(&e).n(), 0);
        let s = Csr::from_adj(&AdjGraph::with_vertices(1));
        let m = apsp_dijkstra(&s);
        assert_eq!(m.get(0, 0), 0);
    }
}
