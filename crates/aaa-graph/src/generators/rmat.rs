//! R-MAT (recursive matrix) power-law graphs.

use super::{check_n, WeightModel};
use crate::{AdjGraph, GraphError, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// R-MAT quadrant probabilities. Must sum to ~1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl Default for RmatParams {
    /// The Graph500-style defaults.
    fn default() -> Self {
        Self { a: 0.57, b: 0.19, c: 0.19, d: 0.05 }
    }
}

impl RmatParams {
    fn validate(&self) -> Result<(), GraphError> {
        let sum = self.a + self.b + self.c + self.d;
        if [self.a, self.b, self.c, self.d].iter().any(|p| *p < 0.0) || (sum - 1.0).abs() > 1e-6 {
            return Err(GraphError::InvalidArgument(format!(
                "R-MAT probabilities must be non-negative and sum to 1 (got {sum})"
            )));
        }
        Ok(())
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and approximately
/// `edge_factor * 2^scale` edges (duplicates and self-loops are dropped, so
/// the realized count is slightly lower).
pub fn rmat(
    scale: u32,
    edge_factor: usize,
    params: RmatParams,
    weights: WeightModel,
    seed: u64,
) -> Result<AdjGraph, GraphError> {
    params.validate()?;
    let n = 1usize << scale;
    check_n(n)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = AdjGraph::with_vertices(n);
    let target = edge_factor * n;
    for _ in 0..target {
        let (mut lo_u, mut hi_u) = (0usize, n);
        let (mut lo_v, mut hi_v) = (0usize, n);
        while hi_u - lo_u > 1 {
            let r: f64 = rng.gen();
            let (right, down) = if r < params.a {
                (false, false)
            } else if r < params.a + params.b {
                (true, false)
            } else if r < params.a + params.b + params.c {
                (false, true)
            } else {
                (true, true)
            };
            let mid_u = (lo_u + hi_u) / 2;
            let mid_v = (lo_v + hi_v) / 2;
            if down {
                lo_u = mid_u;
            } else {
                hi_u = mid_u;
            }
            if right {
                lo_v = mid_v;
            } else {
                hi_v = mid_v;
            }
        }
        let (u, v) = (lo_u as VertexId, lo_v as VertexId);
        if u != v {
            let _ = g.add_or_min_edge(u, v, weights.sample(&mut rng))?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_simple;

    #[test]
    fn generates_power_of_two_vertices() {
        let g = rmat(8, 4, RmatParams::default(), WeightModel::Unit, 1).unwrap();
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 0 && g.num_edges() <= 1024);
        assert_simple(&g);
    }

    #[test]
    fn skewed_quadrants_produce_skewed_degrees() {
        let g = rmat(10, 8, RmatParams::default(), WeightModel::Unit, 2).unwrap();
        let n = g.num_vertices();
        let max_deg = (0..n).map(|v| g.degree(v as u32)).max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        assert!(max_deg as f64 > 4.0 * avg, "max {max_deg} avg {avg}");
    }

    #[test]
    fn rejects_bad_probabilities() {
        let bad = RmatParams { a: 0.9, b: 0.5, c: 0.1, d: 0.1 };
        assert!(rmat(4, 2, bad, WeightModel::Unit, 0).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = rmat(6, 3, RmatParams::default(), WeightModel::Unit, 5).unwrap();
        let b = rmat(6, 3, RmatParams::default(), WeightModel::Unit, 5).unwrap();
        assert_eq!(a, b);
    }
}
