//! Erdős–Rényi G(n, m) random graphs.

use super::{check_n, WeightModel};
use crate::{AdjGraph, GraphError, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashSet;

/// Generates a uniform random graph with exactly `m_edges` distinct edges
/// (or the maximum possible, if `m_edges` exceeds `n(n-1)/2`).
pub fn erdos_renyi(
    n: usize,
    m_edges: usize,
    weights: WeightModel,
    seed: u64,
) -> Result<AdjGraph, GraphError> {
    check_n(n)?;
    let max_edges = n * (n - 1) / 2;
    let m_edges = m_edges.min(max_edges);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = AdjGraph::with_vertices(n);
    let mut seen: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    // Rejection sampling is fine while the graph is sparse; fall back to
    // full enumeration when the request is dense.
    if m_edges * 3 < max_edges || max_edges < 64 {
        while seen.len() < m_edges {
            let u = rng.gen_range(0..n as VertexId);
            let v = rng.gen_range(0..n as VertexId);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                g.add_edge(key.0, key.1, weights.sample(&mut rng))?;
            }
        }
    } else {
        let mut all: Vec<(VertexId, VertexId)> = Vec::with_capacity(max_edges);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                all.push((u, v));
            }
        }
        // Partial Fisher–Yates: choose m_edges distinct pairs.
        for i in 0..m_edges {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
            let (u, v) = all[i];
            g.add_edge(u, v, weights.sample(&mut rng))?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_simple;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(100, 250, WeightModel::Unit, 9).unwrap();
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
        assert_simple(&g);
    }

    #[test]
    fn dense_request_caps_at_complete_graph() {
        let g = erdos_renyi(10, 10_000, WeightModel::Unit, 1).unwrap();
        assert_eq!(g.num_edges(), 45);
        assert_simple(&g);
    }

    #[test]
    fn dense_path_takes_subset() {
        // 40 of 45 possible edges exercises the Fisher–Yates branch.
        let g = erdos_renyi(10, 40, WeightModel::Unit, 4).unwrap();
        assert_eq!(g.num_edges(), 40);
        assert_simple(&g);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = erdos_renyi(50, 100, WeightModel::Unit, 3).unwrap();
        let b = erdos_renyi(50, 100, WeightModel::Unit, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_edges_and_zero_vertices() {
        let g = erdos_renyi(5, 0, WeightModel::Unit, 0).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert!(erdos_renyi(0, 5, WeightModel::Unit, 0).is_err());
    }
}
