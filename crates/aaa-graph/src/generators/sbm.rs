//! Planted-partition stochastic block model.
//!
//! Produces graphs with explicit community structure. The vertex-addition
//! experiments of the paper feed CutEdge-PS batches of vertices "extracted
//! from a larger graph using Louvain" (§V.B.2); the harness generates those
//! larger graphs with this model so the communities are real and recoverable.

use super::{check_n, WeightModel};
use crate::{AdjGraph, GraphError, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of a planted-partition model.
#[derive(Debug, Clone)]
pub struct PlantedPartition {
    /// Number of communities.
    pub communities: usize,
    /// Vertices per community.
    pub size: usize,
    /// Probability of an edge inside a community.
    pub p_in: f64,
    /// Probability of an edge between communities.
    pub p_out: f64,
}

impl PlantedPartition {
    fn validate(&self) -> Result<(), GraphError> {
        if self.communities == 0 || self.size == 0 {
            return Err(GraphError::InvalidArgument("communities and size must be ≥ 1".into()));
        }
        for (name, p) in [("p_in", self.p_in), ("p_out", self.p_out)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(GraphError::InvalidArgument(format!("{name} = {p} not in [0, 1]")));
            }
        }
        Ok(())
    }
}

/// Generates a planted-partition graph. Returns the graph and the ground
/// truth community label of each vertex. Community `c` owns the contiguous
/// id range `c*size .. (c+1)*size`.
pub fn planted_partition(
    params: &PlantedPartition,
    weights: WeightModel,
    seed: u64,
) -> Result<(AdjGraph, Vec<u32>), GraphError> {
    params.validate()?;
    let n = params.communities * params.size;
    check_n(n)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = AdjGraph::with_vertices(n);
    let labels: Vec<u32> = (0..n).map(|v| (v / params.size) as u32).collect();
    // Geometric skipping keeps generation O(E) even for small probabilities.
    let pair_stream = |p: f64,
                       g: &mut AdjGraph,
                       rng: &mut ChaCha8Rng,
                       pairs: &mut dyn FnMut(usize) -> Option<(VertexId, VertexId)>,
                       total: usize|
     -> Result<(), GraphError> {
        if p <= 0.0 {
            return Ok(());
        }
        if p >= 1.0 {
            for i in 0..total {
                if let Some((u, v)) = pairs(i) {
                    g.add_or_min_edge(u, v, weights.sample(rng))?;
                }
            }
            return Ok(());
        }
        let log1p = (1.0 - p).ln();
        let mut i: f64 = -1.0;
        loop {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            i += 1.0 + (r.ln() / log1p).floor();
            if i < 0.0 || i as usize >= total {
                break;
            }
            if let Some((u, v)) = pairs(i as usize) {
                g.add_or_min_edge(u, v, weights.sample(rng))?;
            }
        }
        Ok(())
    };

    // Intra-community pairs, community by community.
    let s = params.size;
    for c in 0..params.communities {
        let base = (c * s) as VertexId;
        let total = s * (s - 1) / 2;
        let mut idx_to_pair = |i: usize| -> Option<(VertexId, VertexId)> {
            // Unrank pair i within the community's upper triangle.
            let (mut u, mut rem) = (0usize, i);
            let mut row_len = s - 1;
            while rem >= row_len {
                rem -= row_len;
                u += 1;
                row_len -= 1;
            }
            let v = u + 1 + rem;
            Some((base + u as VertexId, base + v as VertexId))
        };
        pair_stream(params.p_in, &mut g, &mut rng, &mut idx_to_pair, total)?;
    }
    // Inter-community pairs: iterate ordered community pairs.
    for c1 in 0..params.communities {
        for c2 in (c1 + 1)..params.communities {
            let base1 = (c1 * s) as VertexId;
            let base2 = (c2 * s) as VertexId;
            let total = s * s;
            let mut idx_to_pair = |i: usize| -> Option<(VertexId, VertexId)> {
                Some((base1 + (i / s) as VertexId, base2 + (i % s) as VertexId))
            };
            pair_stream(params.p_out, &mut g, &mut rng, &mut idx_to_pair, total)?;
        }
    }
    Ok((g, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_simple;

    fn model() -> PlantedPartition {
        PlantedPartition { communities: 4, size: 50, p_in: 0.3, p_out: 0.01 }
    }

    #[test]
    fn structure_is_simple_and_labeled() {
        let (g, labels) = planted_partition(&model(), WeightModel::Unit, 1).unwrap();
        assert_eq!(g.num_vertices(), 200);
        assert_eq!(labels.len(), 200);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[199], 3);
        assert_simple(&g);
    }

    #[test]
    fn intra_edges_dominate() {
        let (g, labels) = planted_partition(&model(), WeightModel::Unit, 2).unwrap();
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v, _) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn edge_counts_near_expectation() {
        let (g, _) = planted_partition(&model(), WeightModel::Unit, 3).unwrap();
        // E[intra] = 4 * C(50,2) * 0.3 = 1470; E[inter] = 6*2500*0.01 = 150.
        let e = g.num_edges() as f64;
        assert!((1000.0..2300.0).contains(&e), "edges {e}");
    }

    #[test]
    fn extreme_probabilities() {
        let m = PlantedPartition { communities: 2, size: 4, p_in: 1.0, p_out: 0.0 };
        let (g, _) = planted_partition(&m, WeightModel::Unit, 0).unwrap();
        assert_eq!(g.num_edges(), 2 * 6); // two K4s
        let m = PlantedPartition { communities: 2, size: 4, p_in: 0.0, p_out: 0.0 };
        let (g, _) = planted_partition(&m, WeightModel::Unit, 0).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn rejects_invalid() {
        let m = PlantedPartition { communities: 0, size: 4, p_in: 0.5, p_out: 0.1 };
        assert!(planted_partition(&m, WeightModel::Unit, 0).is_err());
        let m = PlantedPartition { communities: 2, size: 4, p_in: 1.5, p_out: 0.1 };
        assert!(planted_partition(&m, WeightModel::Unit, 0).is_err());
    }
}
