//! Streaming generator variants for graphs too large to materialize.
//!
//! The in-memory generators return an [`AdjGraph`], which caps them at
//! graphs that fit in adjacency-list form. The streaming variants yield the
//! edge stream itself, so a 100M-edge graph can be piped straight into an
//! external-memory ingest (e.g. `aaa-store`'s pair sorter) without ever
//! holding the graph in RAM:
//!
//! * [`ba_stream`] — the **same** Barabási–Albert process as
//!   [`barabasi_albert`]: identical RNG consumption, so for equal
//!   `(n, m, weights, seed)` it yields exactly the edges of the in-memory
//!   generator (the process samples from an endpoint multiset and never
//!   reads the adjacency, which is why it streams). Memory: the endpoint
//!   multiset, `2·n·m` vertex ids.
//! * [`er_stream`] — G(n, p) Erdős–Rényi by geometric skip-sampling over
//!   the lexicographic pair order: O(1) memory, edges emitted sorted by
//!   `(u, v)` with `u < v`.
//! * [`sorted_batches`] — groups any edge stream into fixed-size batches,
//!   each normalized to `u < v` and sorted lexicographically, the shape an
//!   external sorter ingests.
//!
//! [`barabasi_albert`]: super::barabasi_albert

use super::{check_n, WeightModel};
use crate::{GraphError, VertexId, Weight};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A streamed edge: `(u, v, w)`, endpoints distinct.
pub type StreamEdge = (VertexId, VertexId, Weight);

// ----------------------------------------------------------------
// Barabási–Albert
// ----------------------------------------------------------------

/// Streaming Barabási–Albert edge generator; see [`ba_stream`].
#[derive(Debug)]
pub struct BaStream {
    n: usize,
    m: usize,
    weights: WeightModel,
    rng: ChaCha8Rng,
    seed_size: usize,
    /// Endpoint multiset for degree-proportional sampling (the only state
    /// the BA process reads).
    endpoints: Vec<VertexId>,
    /// Seed-clique cursor: next pair `(u, v)` to emit, if any.
    clique: Option<(VertexId, VertexId)>,
    /// Growth phase: vertex being attached (starts at `seed_size − 1` so
    /// the first increment lands on the first grown vertex) and its
    /// remaining targets (reversed so `pop` yields them in selection order).
    current: VertexId,
    pending: Vec<VertexId>,
    emitted: u64,
}

impl BaStream {
    /// Total number of edges the stream will yield.
    pub fn num_edges(&self) -> u64 {
        let s = self.seed_size as u64;
        let clique = s * (s - 1) / 2;
        // Vertices s..n attach with min(m, v) edges; v ≥ s ≥ 1, and
        // min(m, v) < m only while v < m, i.e. never once v ≥ seed_size > m−1.
        let grown: u64 = (self.seed_size..self.n).map(|v| self.m.min(v) as u64).sum();
        clique + grown
    }

    /// Number of vertices in the generated graph.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Edges yielded so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Runs the target-selection loop for vertex `v` — byte-for-byte the
    /// loop in [`super::barabasi_albert`], so RNG consumption matches.
    fn select_targets(&mut self, v: VertexId) {
        let want = self.m.min(v as usize);
        let mut chosen: Vec<VertexId> = Vec::with_capacity(want);
        let mut guard = 0usize;
        while chosen.len() < want && guard < 50 * (want + 1) {
            guard += 1;
            let t = self.endpoints[self.rng.gen_range(0..self.endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        while chosen.len() < want {
            let t = self.rng.gen_range(0..v);
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        chosen.reverse();
        self.pending = chosen;
    }
}

impl Iterator for BaStream {
    type Item = StreamEdge;

    fn next(&mut self) -> Option<StreamEdge> {
        // Phase 1: seed clique.
        if let Some((u, v)) = self.clique {
            let w = self.weights.sample(&mut self.rng);
            self.endpoints.push(u);
            self.endpoints.push(v);
            let s = self.seed_size as VertexId;
            self.clique = if v + 1 < s {
                Some((u, v + 1))
            } else if u + 2 < s {
                Some((u + 1, u + 2))
            } else {
                None
            };
            self.emitted += 1;
            return Some((u, v, w));
        }
        // Phase 2: preferential attachment.
        loop {
            if let Some(t) = self.pending.pop() {
                let v = self.current;
                let w = self.weights.sample(&mut self.rng);
                self.endpoints.push(v);
                self.endpoints.push(t);
                self.emitted += 1;
                return Some((v, t, w));
            }
            self.current += 1;
            if (self.current as usize) >= self.n {
                return None;
            }
            let v = self.current;
            self.select_targets(v);
        }
    }
}

/// Streaming [`super::barabasi_albert`]: yields the identical edge stream
/// (same process, same RNG consumption) without building the graph. Edges
/// arrive in generation order — new vertex first, so `u > v` in the growth
/// phase — not sorted; feed them to an external sorter (or
/// [`sorted_batches`]) for sorted batches.
pub fn ba_stream(
    n: usize,
    m: usize,
    weights: WeightModel,
    seed: u64,
) -> Result<BaStream, GraphError> {
    check_n(n)?;
    if m == 0 {
        return Err(GraphError::InvalidArgument("attachment count m must be ≥ 1".into()));
    }
    let seed_size = (m + 1).min(n);
    Ok(BaStream {
        n,
        m,
        weights,
        rng: ChaCha8Rng::seed_from_u64(seed),
        seed_size,
        endpoints: Vec::new(),
        clique: if seed_size >= 2 { Some((0, 1)) } else { None },
        current: seed_size as VertexId - 1,
        pending: Vec::new(),
        emitted: 0,
    })
}

// ----------------------------------------------------------------
// Erdős–Rényi G(n, p)
// ----------------------------------------------------------------

/// Streaming G(n, p) edge generator; see [`er_stream`].
#[derive(Debug)]
pub struct ErStream {
    n: u64,
    p: f64,
    weights: WeightModel,
    rng: ChaCha8Rng,
    /// Linear index of the next candidate pair (0-based over the
    /// lexicographic enumeration of all n(n−1)/2 pairs).
    next_idx: u64,
    total_pairs: u64,
}

impl ErStream {
    /// Number of vertices in the generated graph.
    pub fn num_vertices(&self) -> usize {
        self.n as usize
    }

    /// Expected number of edges, `p · n(n−1)/2`.
    pub fn expected_edges(&self) -> f64 {
        self.p * self.total_pairs as f64
    }
}

/// Maps a linear pair index to the `(u, v)` pair (`u < v`) in lexicographic
/// order: index 0 → (0,1), 1 → (0,2), …, n−2 → (0,n−1), n−1 → (1,2), …
fn pair_at(idx: u64, n: u64) -> (VertexId, VertexId) {
    // Row u holds n−1−u pairs, so it starts at Σ_{i<u} (n−1−i); find the
    // row by binary search on that cumulative offset.
    let row_start = |u: u64| u * (2 * n - u - 1) / 2;
    let (mut lo, mut hi) = (0u64, n - 1);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if row_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let u = if row_start(hi) <= idx { hi } else { lo };
    let v = u + 1 + (idx - row_start(u));
    (u as VertexId, v as VertexId)
}

impl Iterator for ErStream {
    type Item = StreamEdge;

    fn next(&mut self) -> Option<StreamEdge> {
        if self.next_idx >= self.total_pairs || self.p <= 0.0 {
            return None;
        }
        // Geometric skip: the gap to the next present pair is
        // ⌊ln(1−u) / ln(1−p)⌋ for u ~ U[0,1).
        let skip = if self.p >= 1.0 {
            0
        } else {
            let u: f64 = self.rng.gen();
            let g = ((1.0 - u).ln() / (1.0 - self.p).ln()).floor();
            if g >= self.total_pairs as f64 {
                self.next_idx = self.total_pairs;
                return None;
            }
            g as u64
        };
        let idx = match self.next_idx.checked_add(skip) {
            Some(i) if i < self.total_pairs => i,
            _ => {
                self.next_idx = self.total_pairs;
                return None;
            }
        };
        self.next_idx = idx + 1;
        let (u, v) = pair_at(idx, self.n);
        let w = self.weights.sample(&mut self.rng);
        Some((u, v, w))
    }
}

/// Streaming Erdős–Rényi G(n, p): each of the n(n−1)/2 pairs is an edge
/// independently with probability `p`. Skip-sampling makes the cost O(|E|)
/// and the memory O(1); edges are emitted in lexicographic `(u, v)` order
/// with `u < v`, i.e. already sorted for ingest.
///
/// This is the G(n, p) counterpart of the in-memory G(n, m)
/// [`super::erdos_renyi`]; the two parametrizations agree in distribution
/// when `m ≈ p·n(n−1)/2` but are not edge-for-edge identical.
pub fn er_stream(
    n: usize,
    p: f64,
    weights: WeightModel,
    seed: u64,
) -> Result<ErStream, GraphError> {
    check_n(n)?;
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidArgument(format!("edge probability {p} not in [0, 1]")));
    }
    let n64 = n as u64;
    Ok(ErStream {
        n: n64,
        p,
        weights,
        rng: ChaCha8Rng::seed_from_u64(seed),
        next_idx: 0,
        total_pairs: n64 * (n64 - 1) / 2,
    })
}

// ----------------------------------------------------------------
// Batching
// ----------------------------------------------------------------

/// Groups an edge stream into batches of at most `batch` edges, each
/// normalized to `u < v` and sorted lexicographically by `(u, v, w)` — the
/// unit an external-memory ingest consumes.
pub fn sorted_batches<I>(edges: I, batch: usize) -> SortedBatches<I::IntoIter>
where
    I: IntoIterator<Item = StreamEdge>,
{
    SortedBatches { inner: edges.into_iter(), batch: batch.max(1) }
}

/// Iterator adapter returned by [`sorted_batches`].
#[derive(Debug)]
pub struct SortedBatches<I> {
    inner: I,
    batch: usize,
}

impl<I: Iterator<Item = StreamEdge>> Iterator for SortedBatches<I> {
    type Item = Vec<StreamEdge>;

    fn next(&mut self) -> Option<Vec<StreamEdge>> {
        let mut buf: Vec<StreamEdge> = Vec::with_capacity(self.batch);
        for (u, v, w) in self.inner.by_ref() {
            buf.push((u.min(v), u.max(v), w));
            if buf.len() >= self.batch {
                break;
            }
        }
        if buf.is_empty() {
            return None;
        }
        buf.sort_unstable();
        Some(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;
    use std::collections::BTreeSet;

    fn norm(edges: impl IntoIterator<Item = StreamEdge>) -> BTreeSet<(u32, u32, u32)> {
        edges.into_iter().map(|(u, v, w)| (u.min(v), u.max(v), w)).collect()
    }

    #[test]
    fn ba_stream_matches_in_memory_generator() {
        for (n, m, wm, seed) in [
            (200, 3, WeightModel::Unit, 7u64),
            (100, 2, WeightModel::UniformRange { lo: 1, hi: 9 }, 5),
            (2, 3, WeightModel::Unit, 0),
            (50, 1, WeightModel::Unit, 11),
        ] {
            let g = barabasi_albert(n, m, wm, seed).unwrap();
            let stream = ba_stream(n, m, wm, seed).unwrap();
            let expected: BTreeSet<_> = norm(g.edges());
            let got = norm(stream);
            assert_eq!(got, expected, "n={n} m={m} seed={seed}");
        }
    }

    #[test]
    fn ba_stream_edge_count_is_predicted() {
        let s = ba_stream(500, 3, WeightModel::Unit, 1).unwrap();
        let predicted = s.num_edges();
        assert_eq!(s.count() as u64, predicted);
        let g = barabasi_albert(500, 3, WeightModel::Unit, 1).unwrap();
        assert_eq!(g.num_edges() as u64, predicted);
    }

    #[test]
    fn ba_stream_rejects_bad_params() {
        assert!(ba_stream(0, 2, WeightModel::Unit, 0).is_err());
        assert!(ba_stream(10, 0, WeightModel::Unit, 0).is_err());
        // Single vertex: empty stream.
        assert_eq!(ba_stream(1, 2, WeightModel::Unit, 0).unwrap().count(), 0);
    }

    #[test]
    fn er_stream_is_sorted_simple_and_deterministic() {
        let edges: Vec<_> = er_stream(300, 0.02, WeightModel::Unit, 9).unwrap().collect();
        assert!(edges.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)), "sorted");
        assert!(edges.iter().all(|&(u, v, _)| u < v && v < 300));
        let again: Vec<_> = er_stream(300, 0.02, WeightModel::Unit, 9).unwrap().collect();
        assert_eq!(edges, again);
        let other: Vec<_> = er_stream(300, 0.02, WeightModel::Unit, 10).unwrap().collect();
        assert_ne!(edges, other);
    }

    #[test]
    fn er_stream_edge_count_concentrates() {
        let s = er_stream(400, 0.05, WeightModel::Unit, 3).unwrap();
        let expected = s.expected_edges();
        let count = s.count() as f64;
        // 400·399/2·0.05 ≈ 3990; allow ±15%.
        assert!((count - expected).abs() < 0.15 * expected, "{count} vs {expected}");
    }

    #[test]
    fn er_stream_extremes() {
        assert_eq!(er_stream(50, 0.0, WeightModel::Unit, 1).unwrap().count(), 0);
        assert_eq!(er_stream(10, 1.0, WeightModel::Unit, 1).unwrap().count(), 45);
        assert!(er_stream(10, 1.5, WeightModel::Unit, 1).is_err());
        assert!(er_stream(10, f64::NAN, WeightModel::Unit, 1).is_err());
        assert_eq!(er_stream(1, 0.5, WeightModel::Unit, 1).unwrap().count(), 0);
    }

    #[test]
    fn pair_at_enumerates_lexicographically() {
        let n = 7u64;
        let mut idx = 0u64;
        for u in 0..7u32 {
            for v in (u + 1)..7u32 {
                assert_eq!(pair_at(idx, n), (u, v), "idx {idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn sorted_batches_normalizes_and_sorts() {
        let raw = vec![(5u32, 2u32, 1u32), (1, 0, 2), (3, 4, 1), (9, 8, 1), (0, 7, 3)];
        let batches: Vec<_> = sorted_batches(raw, 2).collect();
        assert_eq!(batches.len(), 3);
        for b in &batches {
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
            assert!(b.iter().all(|&(u, v, _)| u < v));
        }
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }
}
