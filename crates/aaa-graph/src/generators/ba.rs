//! Barabási–Albert preferential attachment.

use super::{check_n, WeightModel};
use crate::{AdjGraph, GraphError, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates a scale-free graph with `n` vertices where each new vertex
/// attaches to `m` existing vertices with probability proportional to their
/// degree (the classic BA process).
///
/// The first `m.max(1)` vertices form a small clique seed so early
/// attachments have targets. Degree-proportional sampling uses the standard
/// "repeated endpoints" trick: picking a uniform element of the list of all
/// edge endpoints selects a vertex with probability `deg(v) / 2|E|`.
pub fn barabasi_albert(
    n: usize,
    m: usize,
    weights: WeightModel,
    seed: u64,
) -> Result<AdjGraph, GraphError> {
    check_n(n)?;
    if m == 0 {
        return Err(GraphError::InvalidArgument("attachment count m must be ≥ 1".into()));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let seed_size = (m + 1).min(n);
    let mut g = AdjGraph::with_vertices(n);
    // Endpoint multiset for degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    for u in 0..seed_size as VertexId {
        for v in (u + 1)..seed_size as VertexId {
            g.add_edge(u, v, weights.sample(&mut rng))?;
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in seed_size as VertexId..n as VertexId {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        // At most `m` distinct targets; fewer only if the graph is tiny.
        let want = m.min(v as usize);
        let mut guard = 0usize;
        while chosen.len() < want && guard < 50 * (want + 1) {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        // Fallback to uniform choice if the multiset kept colliding.
        while chosen.len() < want {
            let t = rng.gen_range(0..v);
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            g.add_edge(v, t, weights.sample(&mut rng))?;
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_simple;
    use crate::stats::connected_components;
    use crate::Csr;

    #[test]
    fn sizes_are_as_expected() {
        let g = barabasi_albert(200, 3, WeightModel::Unit, 7).unwrap();
        assert_eq!(g.num_vertices(), 200);
        // Seed clique of 4 = 6 edges, then 196 vertices × 3 edges.
        assert_eq!(g.num_edges(), 6 + 196 * 3);
        assert_simple(&g);
    }

    #[test]
    fn is_connected() {
        let g = barabasi_albert(500, 2, WeightModel::Unit, 42).unwrap();
        let comps = connected_components(&Csr::from_adj(&g));
        assert_eq!(comps.num_components, 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = barabasi_albert(100, 2, WeightModel::Unit, 5).unwrap();
        let b = barabasi_albert(100, 2, WeightModel::Unit, 5).unwrap();
        assert_eq!(a, b);
        let c = barabasi_albert(100, 2, WeightModel::Unit, 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Scale-free: the max degree should greatly exceed the average.
        let g = barabasi_albert(2000, 2, WeightModel::Unit, 11).unwrap();
        let max_deg = (0..2000).map(|v| g.degree(v as u32)).max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / 2000.0;
        assert!(max_deg as f64 > 5.0 * avg, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn tiny_graphs_work() {
        let g = barabasi_albert(1, 3, WeightModel::Unit, 0).unwrap();
        assert_eq!(g.num_vertices(), 1);
        let g = barabasi_albert(2, 3, WeightModel::Unit, 0).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(barabasi_albert(0, 2, WeightModel::Unit, 0).is_err());
        assert!(barabasi_albert(10, 0, WeightModel::Unit, 0).is_err());
    }

    #[test]
    fn weighted_variant_stays_in_range() {
        let g = barabasi_albert(100, 2, WeightModel::UniformRange { lo: 2, hi: 5 }, 3).unwrap();
        for (_, _, w) in g.edges() {
            assert!((2..=5).contains(&w));
        }
        assert_simple(&g);
    }
}
