//! Random graph generators.
//!
//! The paper evaluates on undirected scale-free graphs produced by Pajek and
//! on community-structured vertex batches extracted with Louvain. We
//! replace Pajek with from-scratch generators:
//!
//! * [`barabasi_albert`] — preferential attachment (scale-free; the model
//!   behind the paper's `c ≈ √n / P` boundary-degree bound),
//! * [`erdos_renyi`] — G(n, m) uniform random graphs,
//! * [`watts_strogatz`] — small-world ring rewiring,
//! * [`rmat`] — Kronecker-style power-law generator,
//! * [`planted_partition`] — stochastic block model with dense communities,
//!   used to produce the community-structured additions of §V.B.2.
//!
//! For graphs too large to hold as adjacency lists, the [`stream`] module
//! provides [`ba_stream`] / [`er_stream`], which yield the edge stream
//! itself for external-memory ingest.
//!
//! All generators are deterministic in their seed (ChaCha8) and produce
//! simple graphs (no self-loops or parallel edges).

mod ba;
mod er;
mod rmat;
mod sbm;
pub mod stream;
mod ws;

pub use ba::barabasi_albert;
pub use er::erdos_renyi;
pub use rmat::{rmat, RmatParams};
pub use sbm::{planted_partition, PlantedPartition};
pub use stream::{ba_stream, er_stream, sorted_batches, BaStream, ErStream, StreamEdge};
pub use ws::watts_strogatz;

use crate::Weight;
use rand::Rng;

/// How generators assign edge weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightModel {
    /// Every edge has weight 1 (unweighted analysis).
    Unit,
    /// Weights drawn uniformly from `lo..=hi`.
    UniformRange { lo: Weight, hi: Weight },
}

impl WeightModel {
    pub(crate) fn sample<R: Rng>(&self, rng: &mut R) -> Weight {
        match *self {
            WeightModel::Unit => 1,
            WeightModel::UniformRange { lo, hi } => rng.gen_range(lo.max(1)..=hi.max(lo.max(1))),
        }
    }
}

/// Shared validation for generator sizes.
pub(crate) fn check_n(n: usize) -> Result<(), crate::GraphError> {
    if n == 0 {
        Err(crate::GraphError::InvalidArgument("graph must have at least one vertex".into()))
    } else {
        Ok(())
    }
}

/// Quick structural sanity check used by generator tests.
#[cfg(test)]
pub(crate) fn assert_simple(g: &crate::AdjGraph) {
    g.validate().expect("generated graph must satisfy invariants");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn weight_model_unit_is_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(WeightModel::Unit.sample(&mut rng), 1);
    }

    #[test]
    fn weight_model_range_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let w = WeightModel::UniformRange { lo: 3, hi: 9 }.sample(&mut rng);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn weight_model_range_never_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(WeightModel::UniformRange { lo: 0, hi: 2 }.sample(&mut rng) >= 1);
        }
    }
}
