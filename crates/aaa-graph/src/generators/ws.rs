//! Watts–Strogatz small-world graphs.

use super::{check_n, WeightModel};
use crate::{AdjGraph, GraphError, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates a Watts–Strogatz small-world graph: a ring lattice where each
/// vertex connects to its `k` nearest neighbors (`k` rounded down to even),
/// with each edge rewired to a uniform random target with probability
/// `beta ∈ [0, 1]`.
pub fn watts_strogatz(
    n: usize,
    k: usize,
    beta: f64,
    weights: WeightModel,
    seed: u64,
) -> Result<AdjGraph, GraphError> {
    check_n(n)?;
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidArgument(format!("beta {beta} not in [0, 1]")));
    }
    let half = (k / 2).min(n.saturating_sub(1) / 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = AdjGraph::with_vertices(n);
    for u in 0..n {
        for step in 1..=half {
            let v = (u + step) % n;
            let (u, v) = (u as VertexId, v as VertexId);
            if rng.gen_bool(beta) {
                // Rewire: keep u, pick a fresh target; skip on collision
                // rather than loop forever on tiny graphs.
                let mut placed = false;
                for _ in 0..16 {
                    let t = rng.gen_range(0..n as VertexId);
                    if t != u && !g.has_edge(u, t) {
                        g.add_edge(u, t, weights.sample(&mut rng))?;
                        placed = true;
                        break;
                    }
                }
                if !placed && u != v && !g.has_edge(u, v) {
                    g.add_edge(u, v, weights.sample(&mut rng))?;
                }
            } else if !g.has_edge(u, v) {
                g.add_edge(u, v, weights.sample(&mut rng))?;
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_simple;
    use crate::stats::connected_components;
    use crate::Csr;

    #[test]
    fn ring_lattice_at_beta_zero() {
        let g = watts_strogatz(20, 4, 0.0, WeightModel::Unit, 1).unwrap();
        assert_eq!(g.num_edges(), 40); // n * k/2
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
        assert_simple(&g);
    }

    #[test]
    fn rewiring_changes_structure_but_keeps_simplicity() {
        let g = watts_strogatz(200, 6, 0.3, WeightModel::Unit, 2).unwrap();
        assert_simple(&g);
        // Edge count can only shrink slightly on collisions.
        assert!(g.num_edges() <= 600 && g.num_edges() > 500);
    }

    #[test]
    fn stays_mostly_connected() {
        let g = watts_strogatz(300, 6, 0.1, WeightModel::Unit, 3).unwrap();
        let comps = connected_components(&Csr::from_adj(&g));
        assert_eq!(comps.num_components, 1);
    }

    #[test]
    fn rejects_bad_beta_and_zero_n() {
        assert!(watts_strogatz(10, 2, 1.5, WeightModel::Unit, 0).is_err());
        assert!(watts_strogatz(0, 2, 0.5, WeightModel::Unit, 0).is_err());
    }

    #[test]
    fn tiny_n_does_not_panic() {
        let g = watts_strogatz(2, 4, 0.5, WeightModel::Unit, 0).unwrap();
        assert!(g.num_edges() <= 1);
    }
}
