#!/bin/bash
# Tail of the experiment suite. fig8 runs first (timing-sensitive, keep the
# box idle); the remaining experiments report deterministic counts/errors
# (fig7, quality) or LogP-priced comm (ablation_logp) and tolerate load.
# Scales are reduced where noted; see EXPERIMENTS.md.
set -x
cd /root/repo
B=./target/release
$B/fig8 --scale 1200 --csv results/fig8.csv > results/fig8.txt 2>&1 || echo "FAILED: fig8" >> results/failures.txt
echo "done: fig8"
$B/anytime_quality --scale 1500 --csv results/anytime_quality.csv > results/anytime_quality.txt 2>&1 || echo "FAILED: anytime_quality" >> results/failures.txt
echo "done: anytime_quality"
$B/ablation_partitioner --scale 1200 --csv results/ablation_partitioner.csv > results/ablation_partitioner.txt 2>&1 || echo "FAILED: ablation_partitioner" >> results/failures.txt
echo "done: ablation_partitioner"
$B/ablation_logp --scale 1000 --csv results/ablation_logp.csv > results/ablation_logp.txt 2>&1 || echo "FAILED: ablation_logp" >> results/failures.txt
echo "done: ablation_logp"
$B/fig7 --csv results/fig7.csv > results/fig7.txt 2>&1 || echo "FAILED: fig7" >> results/failures.txt
echo "done: fig7"
echo REST_DONE
