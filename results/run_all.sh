#!/bin/bash
# Regenerates every figure table at default scale. Outputs to results/.
set -x
cd /root/repo
B=./target/release
for fig in fig4 fig5 fig6 fig8 anytime_quality ablation_partitioner ablation_logp; do
  $B/$fig --csv results/$fig.csv > results/$fig.txt  || echo "FAILED: $fig" >> results/failures.txt
  echo "done: $fig"
done
$B/fig7 --csv results/fig7.csv > results/fig7.txt 2> results/fig7.time || echo "FAILED: fig7" >> results/failures.txt
echo "done: fig7"
echo ALL_DONE
