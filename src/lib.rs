//! # anytime-anywhere
//!
//! Facade crate for the reproduction of *"Efficient Anytime Anywhere
//! Algorithms for Vertex Additions in Large and Dynamic Graphs"*
//! (Santos, Korah, Murugappan, Subramanian — IPDPSW 2017).
//!
//! The actual implementation lives in the workspace crates; this crate
//! re-exports them under stable names so downstream users depend on one
//! package:
//!
//! * [`graph`] — graph structures, generators, Louvain, reference algorithms.
//! * [`partition`] — multilevel k-way partitioner and simple partitioners.
//! * [`runtime`] — the in-process BSP message-passing cluster with LogP
//!   cost accounting.
//! * [`checkpoint`] — versioned binary snapshots, checkpoint policies,
//!   and the rank-failure recovery building blocks.
//! * [`core`] — the anytime anywhere closeness-centrality engine with
//!   dynamic vertex additions and processor-assignment strategies.
//! * [`observe`] — structured run tracing: typed span events, Chrome-trace
//!   export, machine-readable run reports, and the perf-gate comparator.
//! * [`serve`] — snapshot-isolated concurrent query serving over the
//!   engine's published epoch views.
//! * [`store`] — the [`store::GraphStore`] backend trait with plain and
//!   compressed (gap-coded, Elias-Fano–indexed, mmap-able) graph storage
//!   plus external-memory ingest for graphs beyond RAM.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
//! use anytime_anywhere::core::{EngineConfig, AnytimeEngine};
//!
//! let g = barabasi_albert(200, 2, WeightModel::Unit, 42).unwrap();
//! let mut engine = AnytimeEngine::new(g, EngineConfig::with_procs(4)).unwrap();
//! let summary = engine.run_to_convergence();
//! assert!(summary.converged);
//! assert_eq!(engine.closeness().len(), 200);
//! ```

pub use aaa_checkpoint as checkpoint;
pub use aaa_core as core;
pub use aaa_graph as graph;
pub use aaa_observe as observe;
pub use aaa_partition as partition;
pub use aaa_runtime as runtime;
pub use aaa_serve as serve;
pub use aaa_store as store;
