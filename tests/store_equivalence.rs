//! Backend equivalence and on-disk robustness for the graph store.
//!
//! Every [`GraphStore`] backend — adjacency lists, CSR, the compressed
//! gap-coded store (built in memory or through the spill-forced
//! external-memory ingest), and the compressed store after a disk
//! round-trip — must present the *same* graph: identical degrees, identical
//! sorted successor lists, identical BFS distances, bit-identical closeness.
//! And a corrupted on-disk store must surface as a typed [`StoreError`],
//! never a panic.

use anytime_anywhere::graph::{AdjGraph, Csr, GraphBuilder};
use anytime_anywhere::store::{algo, edges, CompressedGraph, GraphStore, LoadMode, StoreError};
use proptest::prelude::*;
use std::path::PathBuf;

/// An arbitrary simple weighted graph with `n ∈ [2, 40]` vertices.
fn arb_graph() -> impl Strategy<Value = AdjGraph> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..10), 0..(3 * n));
        edges.prop_map(move |edges| {
            let mut b = GraphBuilder::with_vertices(n);
            for (u, v, w) in edges {
                b.edge(u, v, w);
            }
            b.build().expect("builder output is always valid")
        })
    })
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aaa-store-eq-{}-{name}", std::process::id()))
}

fn rows<G: GraphStore>(g: &G) -> Vec<Vec<(u32, u32)>> {
    g.vertices().map(|v| g.successors(v).collect()).collect()
}

/// Asserts two backends present the same graph through every trait surface.
fn assert_equivalent<A: GraphStore + Sync, B: GraphStore + Sync>(a: &A, b: &B) {
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.num_edges(), b.num_edges());
    assert_eq!(a.num_arcs(), b.num_arcs());
    for v in a.vertices() {
        assert_eq!(a.degree(v), b.degree(v), "degree of {v}");
    }
    assert_eq!(rows(a), rows(b), "successor lists");
    for v in a.vertices().take(8) {
        assert_eq!(algo::bfs_hops(a, v), algo::bfs_hops(b, v), "bfs from {v}");
        assert_eq!(algo::dijkstra(a, v), algo::dijkstra(b, v), "dijkstra from {v}");
    }
    // Closeness is bit-identical across backends (integer distances, shared
    // reduction), so exact equality is the contract, not an approximation.
    assert_eq!(algo::closeness_exact(a), algo::closeness_exact(b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_backends_present_the_same_graph(g in arb_graph(), case in 0u64..u64::MAX) {
        let csr = Csr::from_adj(&g);
        let direct = CompressedGraph::from_store(&g).unwrap();
        direct.validate().unwrap();

        // Spill-forced external ingest: a tiny budget makes every few edges
        // a sorted run, exercising the k-way merge and dedup.
        let dir = scratch(&format!("ingest-{case}"));
        let arcs = anytime_anywhere::store::sort_edges(&dir, 48, edges(&g)).unwrap();
        let weighted = edges(&g).any(|(_, _, w)| w != 1);
        let ingested =
            CompressedGraph::from_sorted_arcs(g.num_vertices(), weighted, arcs).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert_equivalent(&g, &csr);
        assert_equivalent(&g, &direct);
        assert_equivalent(&g, &ingested);

        // Sorted-successor invariant holds on every backend.
        for v in g.vertices() {
            let row: Vec<u32> = direct.successors(v).map(|(t, _)| t).collect();
            prop_assert!(row.windows(2).all(|p| p[0] < p[1]), "row {v} sorted strictly");
        }
    }

    #[test]
    fn disk_round_trip_is_lossless(g in arb_graph(), case in 0u64..u64::MAX) {
        let direct = CompressedGraph::from_store(&g).unwrap();
        let path = scratch(&format!("roundtrip-{case}.aast"));
        direct.write_to(&path).unwrap();
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let loaded = CompressedGraph::load(&path, mode).unwrap();
            loaded.validate().unwrap();
            assert_equivalent(&g, &loaded);
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ----------------------------------------------------------------
// Corruption: typed errors, never panics
// ----------------------------------------------------------------

fn sample_store_bytes() -> Vec<u8> {
    let mut b = GraphBuilder::with_vertices(30);
    for i in 0..29u32 {
        b.edge(i, i + 1, (i % 5) + 1);
        b.edge(i, (i + 7) % 30, 1);
    }
    let g = b.build().unwrap();
    let c = CompressedGraph::from_store(&g).unwrap();
    let path = scratch("corruption-source.aast");
    c.write_to(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

fn load_bytes(bytes: &[u8], name: &str) -> Result<CompressedGraph, StoreError> {
    let path = scratch(name);
    std::fs::write(&path, bytes).unwrap();
    let out = CompressedGraph::load(&path, LoadMode::Heap);
    let _ = std::fs::remove_file(&path);
    out
}

#[test]
fn truncated_files_error_cleanly() {
    let bytes = sample_store_bytes();
    // Every prefix shorter than the full file must fail with a typed error
    // (sampled densely near the header, sparsely through the body).
    let mut cuts: Vec<usize> = (0..80).collect();
    cuts.extend((80..bytes.len()).step_by(37));
    for cut in cuts {
        let err = load_bytes(&bytes[..cut], &format!("trunc-{cut}.aast"))
            .expect_err("truncated file must not load");
        match err {
            StoreError::Truncated { .. }
            | StoreError::CrcMismatch { .. }
            | StoreError::BadMagic { .. }
            | StoreError::BadVersion { .. }
            | StoreError::Io(_) => {}
            other => panic!("unexpected error for cut {cut}: {other:?}"),
        }
    }
}

#[test]
fn bit_flips_are_always_detected() {
    let bytes = sample_store_bytes();
    // Flip one bit in every byte position (all sections: header, data,
    // offsets). The three CRCs must catch every single one.
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << (pos % 8);
        let result = load_bytes(&bad, &format!("flip-{pos}.aast"));
        assert!(result.is_err(), "bit flip at byte {pos} went undetected");
    }
}

#[test]
fn wrong_magic_and_version_are_typed() {
    let bytes = sample_store_bytes();
    let mut bad = bytes.clone();
    bad[0..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        load_bytes(&bad, "magic.aast"),
        Err(StoreError::BadMagic { found }) if &found == b"NOPE"
    ));
    // Version bump: flip the version field AND the matching header CRC is
    // now stale, so either error is acceptable — but it must be typed.
    let mut bad = bytes.clone();
    bad[4] = 99;
    assert!(matches!(
        load_bytes(&bad, "version.aast"),
        Err(StoreError::BadVersion { .. }) | Err(StoreError::CrcMismatch { .. })
    ));
    let err = load_bytes(&[], "empty.aast").expect_err("empty file");
    assert!(matches!(err, StoreError::Truncated { .. }));
}

#[test]
fn oversized_trailing_garbage_is_rejected() {
    let mut bytes = sample_store_bytes();
    bytes.extend_from_slice(&[0xAB; 16]);
    let err = load_bytes(&bytes, "trailing.aast").expect_err("trailing garbage");
    assert!(matches!(err, StoreError::Truncated { .. } | StoreError::CrcMismatch { .. }));
}
