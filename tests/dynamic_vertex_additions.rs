//! The paper's core claim, verified end-to-end: incorporating vertex
//! additions mid-analysis (any strategy, any injection point) converges to
//! exactly the same closeness values as restarting from scratch on the
//! final graph.

use anytime_anywhere::core::changes::{community_batch, preferential_batch, CommunityBatchParams};
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, EngineConfig, NewVertex, VertexBatch};
use anytime_anywhere::graph::apsp::apsp_dijkstra;
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::graph::{AdjGraph, Csr};

fn final_graph_of(g: &AdjGraph, batch: &VertexBatch) -> AdjGraph {
    let mut full = g.clone();
    let base = full.num_vertices() as u32;
    full.add_vertices(batch.len());
    for (a, b, w) in batch.global_edges(base) {
        full.add_edge(a, b, w).unwrap();
    }
    full
}

fn assert_dynamic_matches_scratch(
    g: &AdjGraph,
    batch: &VertexBatch,
    strategy: AssignStrategy,
    inject_after_steps: usize,
    procs: usize,
) {
    let full = final_graph_of(g, batch);
    let reference = apsp_dijkstra(&Csr::from_adj(&full));

    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(procs)).unwrap();
    for _ in 0..inject_after_steps {
        engine.rc_step();
    }
    engine.apply_vertex_additions(batch, strategy).unwrap();
    let summary = engine.run_to_convergence();
    assert!(summary.converged, "{}: no convergence", strategy.name());

    let got = engine.distances();
    let n = full.num_vertices();
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            assert_eq!(
                got.get(u, v),
                reference.get(u, v),
                "{} injected@{}: d({u},{v})",
                strategy.name(),
                inject_after_steps
            );
        }
    }
}

fn strategies() -> [AssignStrategy; 3] {
    [
        AssignStrategy::RoundRobin,
        AssignStrategy::CutEdge { seed: 1, tries: 2 },
        AssignStrategy::Repartition { seed: 1 },
    ]
}

#[test]
fn preferential_additions_every_strategy_early_injection() {
    let g = barabasi_albert(80, 2, WeightModel::Unit, 4).unwrap();
    let batch = preferential_batch(&g, 12, 2, 9);
    for s in strategies() {
        assert_dynamic_matches_scratch(&g, &batch, s, 0, 4);
    }
}

#[test]
fn preferential_additions_every_strategy_late_injection() {
    let g = barabasi_albert(80, 2, WeightModel::Unit, 4).unwrap();
    let batch = preferential_batch(&g, 12, 2, 10);
    for s in strategies() {
        // Inject after the static analysis has fully converged.
        assert_dynamic_matches_scratch(&g, &batch, s, 8, 4);
    }
}

#[test]
fn community_structured_additions() {
    let g = barabasi_albert(100, 2, WeightModel::Unit, 7).unwrap();
    let params =
        CommunityBatchParams { count: 30, community_size: 10, seed: 5, ..Default::default() };
    let (batch, _) = community_batch(&g, &params);
    for s in strategies() {
        assert_dynamic_matches_scratch(&g, &batch, s, 2, 4);
    }
}

#[test]
fn weighted_graph_additions() {
    let g = barabasi_albert(70, 2, WeightModel::UniformRange { lo: 1, hi: 5 }, 8).unwrap();
    let mut batch = preferential_batch(&g, 10, 2, 3);
    // Give the new edges varied weights.
    for (i, nv) in batch.vertices.iter_mut().enumerate() {
        for (j, e) in nv.edges.iter_mut().enumerate() {
            e.1 = 1 + ((i + j) % 4) as u32;
        }
    }
    for s in strategies() {
        assert_dynamic_matches_scratch(&g, &batch, s, 1, 3);
    }
}

#[test]
fn incremental_batches_across_many_steps() {
    // Fig. 8 shape: several small batches at successive RC steps.
    let g = barabasi_albert(60, 2, WeightModel::Unit, 12).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    let mut full = g.clone();
    for step in 0..5u64 {
        engine.rc_step();
        let batch = preferential_batch(&full, 5, 2, 100 + step);
        let base = full.num_vertices() as u32;
        full.add_vertices(batch.len());
        for (a, b, w) in batch.global_edges(base) {
            full.add_edge(a, b, w).unwrap();
        }
        engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).unwrap();
    }
    engine.run_to_convergence();
    let reference = apsp_dijkstra(&Csr::from_adj(&full));
    assert_eq!(engine.distances(), reference);
}

#[test]
fn new_vertex_chains_connect_through_each_other() {
    // A chain of new vertices where only the first touches the old graph:
    // distances must propagate through batch-internal edges.
    let g = barabasi_albert(40, 2, WeightModel::Unit, 3).unwrap();
    let base = 40u32;
    let batch = VertexBatch {
        vertices: vec![
            NewVertex { edges: vec![(0, 1)] },        // 40 - old 0
            NewVertex { edges: vec![(base, 1)] },     // 41 - 40
            NewVertex { edges: vec![(base + 1, 1)] }, // 42 - 41
            NewVertex { edges: vec![(base + 2, 1)] }, // 43 - 42
        ],
    };
    for s in strategies() {
        assert_dynamic_matches_scratch(&g, &batch, s, 0, 4);
    }
}

#[test]
fn isolated_new_vertices() {
    let g = barabasi_albert(30, 2, WeightModel::Unit, 2).unwrap();
    let batch = VertexBatch { vertices: (0..6).map(|_| NewVertex { edges: vec![] }).collect() };
    for s in strategies() {
        assert_dynamic_matches_scratch(&g, &batch, s, 1, 3);
    }
}

#[test]
fn empty_batch_is_a_noop() {
    let g = barabasi_albert(30, 2, WeightModel::Unit, 2).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(3)).unwrap();
    engine.run_to_convergence();
    let before = engine.stats().messages;
    engine.apply_vertex_additions(&VertexBatch::default(), AssignStrategy::RoundRobin).unwrap();
    assert_eq!(engine.stats().messages, before);
    assert_eq!(engine.graph().num_vertices(), 30);
}

#[test]
fn invalid_batches_are_rejected_without_damage() {
    let g = barabasi_albert(30, 2, WeightModel::Unit, 2).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(3)).unwrap();
    let bad = VertexBatch { vertices: vec![NewVertex { edges: vec![(99, 1)] }] };
    assert!(engine.apply_vertex_additions(&bad, AssignStrategy::RoundRobin).is_err());
    assert_eq!(engine.graph().num_vertices(), 30);
    // Engine still works afterwards.
    engine.run_to_convergence();
    assert_eq!(engine.closeness().len(), 30);
}

#[test]
fn round_robin_balances_across_batches() {
    let g = barabasi_albert(40, 2, WeightModel::Unit, 6).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    for seed in 0..4u64 {
        let batch = preferential_batch(engine.graph(), 3, 1, seed);
        engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).unwrap();
    }
    // 12 new vertices over 4 procs round-robin: each part got exactly 3.
    let sizes = engine.partition().part_sizes();
    let baseline =
        AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap().partition().part_sizes();
    for (after, before) in sizes.iter().zip(&baseline) {
        assert_eq!(after - before, 3);
    }
}
