//! Soak the serving layer: reader threads query published views while the
//! writer streams seeded updates through the ingest log and re-converges
//! under an adversarial (but eventually-quiet) chaos plan. The contract
//! under test is the pipeline's isolation guarantee — readers never panic,
//! never see a torn or partial view, and epoch ids never move backwards,
//! even across supervised retries and checkpoint fallbacks.
//!
//! The CI serve-soak job sweeps `CHAOS_SOAK_SEED` to vary the fault plans
//! across matrix entries without touching the code.

use anytime_anywhere::core::changes::{preferential_batch, DynamicChange};
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, ChaosPlan, EngineConfig, RetryPolicy};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::serve::ServeHandle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Extra seed material from the CI soak matrix (0 for local runs).
fn soak_seed() -> u64 {
    std::env::var("CHAOS_SOAK_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// Churn waves per soak: `AAA_SOAK_WAVES` stretches the horizon for the
/// nightly soak without touching the fast default.
fn soak_waves(default: u64) -> u64 {
    std::env::var("AAA_SOAK_WAVES").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x
}

#[test]
fn readers_survive_a_chaotic_update_stream_with_monotone_epochs() {
    let seed = mix(4242, soak_seed());
    let g =
        barabasi_albert(150, 2, WeightModel::UniformRange { lo: 1, hi: 6 }, seed % 1_000).unwrap();
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
    engine.set_chaos(ChaosPlan::seeded(seed, 0.15, 24));
    let policy = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };

    let handle = ServeHandle::attach(&engine);
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let h = handle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut probes = 0u64;
                let mut v = r as u32;
                while !stop.load(Ordering::Relaxed) {
                    let view = h.view();
                    assert!(view.epoch >= last, "epoch went backwards: {} < {last}", view.epoch);
                    last = view.epoch;
                    // Views are complete snapshots: every vertex of the
                    // epoch answers with a finite closeness.
                    let n = view.num_vertices() as u32;
                    let c = view.point(v % n).expect("published views are complete");
                    assert!(c.is_finite());
                    probes += 1;
                    v = v.wrapping_add(1);
                }
                (last, probes)
            })
        })
        .collect();

    // Writer: converge under chaos, then stream three waves of seeded
    // structural churn (edge flips + one vertex batch) through the ingest
    // log, re-converging supervised after each wave.
    let run = engine.run_supervised(&policy).expect("supervised run under chaos");
    assert!(run.converged(), "eventually-quiet plan must converge: {:?}", run.degraded);
    for wave in 0..soak_waves(3) {
        let n = engine.graph().num_vertices() as u32;
        for i in 0..6u64 {
            let r = mix(seed, wave * 97 + i);
            let u = (r % n as u64) as u32;
            let v = ((r >> 17) % n as u64) as u32;
            if u == v {
                continue;
            }
            let change = if engine.graph().has_edge(u, v) {
                DynamicChange::RemoveEdge { u, v }
            } else {
                DynamicChange::AddEdge { u, v, w: 1 + (r >> 40) as u32 % 5 }
            };
            engine.submit(change).expect("valid seeded change");
        }
        if wave == 1 {
            let batch = preferential_batch(engine.graph(), 8, 2, seed % 512);
            engine
                .submit_with_strategy(DynamicChange::AddVertices(batch), AssignStrategy::RoundRobin)
                .expect("valid vertex batch");
        }
        let run = engine.run_supervised(&policy).expect("supervised re-convergence");
        assert!(run.converged(), "wave {wave} degraded: {:?}", run.degraded);
        assert_eq!(engine.pending_changes(), 0, "RC barriers drain the log");
    }
    let final_epoch = engine.epochs_published();
    stop.store(true, Ordering::Relaxed);

    for r in readers {
        let (last_seen, probes) = r.join().expect("reader panicked during the soak");
        assert!(probes > 0);
        assert!(last_seen <= final_epoch, "reader saw an epoch the engine never published");
    }
    // The handle ends fully fresh, on the final converged epoch.
    let view = handle.view();
    assert_eq!(view.epoch, final_epoch);
    assert!(view.converged);
    assert!(view.changes_applied > 0, "the churn waves actually landed");
}
