//! Property coverage for the ingest coalescer under **adversarial
//! hub-targeting streams** — the workload the background rebalancer is
//! built to absorb. Two contracts:
//!
//! 1. *Streamed ≡ direct.* Bursts submitted through the coalescing
//!    change log (which may fold same-strategy vertex batches and hence
//!    assign them differently) must land on the bit-identical fixed
//!    point of applying the same batches one by one — closeness is a
//!    partition-independent function of the graph, so coalescing can
//!    never be observable in the answers.
//! 2. *Bounded backlog under migration.* While the adaptive rebalancer
//!    is actively migrating the targeted hubs off an overloaded rank,
//!    the log's entry count stays O(1) in both burst size and stream
//!    length — coalescing bounds the queue by entry *kinds*, not by
//!    offered batches.

use anytime_anywhere::core::changes::DynamicChange;
use anytime_anywhere::core::{
    AnytimeEngine, AssignStrategy, EngineConfig, NewVertex, RebalanceConfig, RebalancePolicy,
    VertexBatch,
};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::graph::{AdjGraph, PartId};
use anytime_anywhere::partition::Partition;
use proptest::prelude::*;

/// Every new vertex wires exclusively to the highest-degree vertices of
/// the base graph: the degenerate stream that concentrates all new load
/// on whichever ranks own the hubs.
fn hub_batch(g: &AdjGraph, count: usize, edges_per_vertex: usize, seed: u64) -> VertexBatch {
    let mut by_degree: Vec<u32> = g.vertices().collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let pool = by_degree.len().min(edges_per_vertex + 4);
    let hubs = &by_degree[..pool];
    let vertices = (0..count)
        .map(|i| {
            let start = (seed as usize + i) % hubs.len();
            let edges = (0..edges_per_vertex.min(hubs.len()))
                .map(|j| (hubs[(start + j) % hubs.len()], 1))
                .collect();
            NewVertex { edges }
        })
        .collect();
    VertexBatch { vertices }
}

fn bits(close: &[f64]) -> Vec<u64> {
    close.iter().map(|c| c.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streamed_hub_batches_equal_direct_application(
        n in 30usize..80,
        gseed in 0u64..500,
        procs in 2usize..5,
        ticks in 2u64..6,
        burst in 1usize..4,
        batch in 1usize..5,
    ) {
        let g = barabasi_albert(n, 2, WeightModel::UniformRange { lo: 1, hi: 6 }, gseed)
            .unwrap();
        // All batches target the *base* hubs and are generated up front,
        // so both engines see byte-identical change sequences no matter
        // when each drains.
        let batches: Vec<VertexBatch> = (0..ticks * burst as u64)
            .map(|i| hub_batch(&g, batch, 2, gseed + i))
            .collect();
        let strategy = AssignStrategy::CutEdge { seed: gseed, tries: 1 };

        // Streamed: bursts enter the coalescing log; RC steps run at half
        // the offered cadence so bursts genuinely queue and fold.
        let mut streamed =
            AnytimeEngine::new(g.clone(), EngineConfig::deterministic(procs)).unwrap();
        let mut offered = batches.iter();
        for t in 0..ticks {
            for _ in 0..burst {
                streamed
                    .submit_with_strategy(
                        DynamicChange::AddVertices(offered.next().unwrap().clone()),
                        strategy,
                    )
                    .unwrap();
            }
            if t % 2 == 1 {
                streamed.rc_step();
            }
        }
        while streamed.pending_changes() > 0 {
            streamed.rc_step();
        }
        prop_assert!(streamed.run_to_convergence().converged);
        prop_assert!(
            streamed.ingest_stats().coalesced > 0,
            "same-strategy bursts across ticks must exercise the coalescer"
        );

        // Direct: the same batches applied immediately, one by one.
        let mut direct = AnytimeEngine::new(g, EngineConfig::deterministic(procs)).unwrap();
        for b in &batches {
            direct.apply_vertex_additions(b, strategy).unwrap();
        }
        prop_assert!(direct.run_to_convergence().converged);

        prop_assert_eq!(streamed.distances(), direct.distances());
        prop_assert_eq!(bits(&streamed.closeness()), bits(&direct.closeness()));
    }

    #[test]
    fn backlog_stays_bounded_while_the_rebalancer_chases_hubs(
        n in 40usize..90,
        gseed in 0u64..500,
        procs in 2usize..5,
        ticks in 4u64..10,
        burst in 2usize..5,
    ) {
        let g = barabasi_albert(n, 2, WeightModel::UniformRange { lo: 1, hi: 5 }, gseed)
            .unwrap();
        // Skew everything onto rank 0 (one seed vertex per other rank) so
        // the first barrier provably trips the trigger: the rebalancer is
        // migrating the very hubs the stream keeps piling onto.
        let mut owner = vec![0 as PartId; n];
        for q in 1..procs {
            owner[n - q] = q as PartId;
        }
        let partition = Partition::new(owner, procs).unwrap();
        let mut config = EngineConfig::deterministic(procs);
        config.rebalance = RebalanceConfig {
            every: 2,
            trigger: 1.05,
            ..RebalanceConfig::with_policy(RebalancePolicy::Adaptive)
        };
        let mut engine = AnytimeEngine::with_partition(g.clone(), partition, config).unwrap();

        let mut peak = 0usize;
        for t in 0..ticks {
            for i in 0..burst {
                let b = hub_batch(&g, 3, 2, gseed + t * 31 + i as u64);
                engine
                    .submit_with_strategy(
                        DynamicChange::AddVertices(b),
                        AssignStrategy::CutEdge { seed: gseed, tries: 1 },
                    )
                    .unwrap();
            }
            peak = peak.max(engine.pending_changes());
            if t % 2 == 1 {
                engine.rc_step();
            }
        }
        // Every same-strategy AddVertices burst folds into one log entry:
        // the backlog never scales with burst size or stream length.
        prop_assert!(peak <= 2, "coalesced backlog grew to {}", peak);

        while engine.pending_changes() > 0 {
            engine.rc_step();
        }
        prop_assert!(engine.run_to_convergence().converged);
        let stats = engine.stats();
        prop_assert!(stats.migrations > 0, "the skewed start must trip the rebalancer");
        prop_assert!(stats.migration_bytes > 0, "migrated rows ride the priced exchange");

        // Migration under a live stream never disturbs the fixed point.
        let live = bits(&engine.closeness());
        let exact = bits(&engine.recompute_exact());
        prop_assert_eq!(live, exact);
    }
}
