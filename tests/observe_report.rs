//! Integration tests for the observability layer (S24): armed engine runs
//! produce consistent spans, reports round-trip through their JSON form,
//! the Chrome-trace export is valid JSON, and recording never perturbs the
//! deterministic accounting.

use anytime_anywhere::core::changes::preferential_batch;
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, EngineConfig, MemorySink, SpanKind};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::observe::{
    aggregate_phases, chrome_trace, compare, per_rank_busy, regressed, GateConfig, Json, RunReport,
};
use anytime_anywhere::runtime::RunStats;
use std::sync::Arc;

const PROCS: usize = 4;

/// One small dynamic scenario; returns the final stats and (if a sink was
/// armed) the recorded events.
fn run_scenario(armed: bool) -> (RunStats, Vec<anytime_anywhere::core::SpanEvent>) {
    let g = barabasi_albert(150, 2, WeightModel::Unit, 11).expect("generator");
    let sink = Arc::new(MemorySink::new());
    let mut engine = if armed {
        AnytimeEngine::with_sink(g, EngineConfig::deterministic(PROCS), sink.clone())
            .expect("engine")
    } else {
        AnytimeEngine::new(g, EngineConfig::deterministic(PROCS)).expect("engine")
    };
    for _ in 0..3 {
        engine.rc_step();
    }
    let batch = preferential_batch(engine.graph(), 10, 2, 3);
    engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).expect("batch");
    let _ = engine.checkpoint_bytes().expect("checkpoint");
    assert!(engine.run_to_convergence().converged);
    (engine.stats(), sink.drain())
}

#[test]
fn recording_does_not_perturb_deterministic_accounting() {
    let (armed, events) = run_scenario(true);
    let (disarmed, none) = run_scenario(false);
    assert!(none.is_empty());
    assert!(!events.is_empty());
    assert_eq!(armed.messages, disarmed.messages);
    assert_eq!(armed.bytes, disarmed.bytes);
    assert_eq!(armed.sim_comm_us, disarmed.sim_comm_us);
    assert_eq!(armed.supersteps, disarmed.supersteps);
    assert_eq!(armed.collectives, disarmed.collectives);
    assert_eq!(armed.checkpoints, disarmed.checkpoints);
}

#[test]
fn engine_spans_cover_the_run() {
    let (stats, events) = run_scenario(true);
    let count = |k: SpanKind| events.iter().filter(|e| e.kind == k).count() as u64;

    assert_eq!(count(SpanKind::DomainDecomposition), 1);
    assert_eq!(count(SpanKind::Checkpoint), stats.checkpoints);
    assert_eq!(count(SpanKind::Collective), stats.collectives);
    // Every superstep contributes one span per rank (exchange supersteps
    // contribute two compute phases, but each bumps the counter once).
    assert_eq!(count(SpanKind::Superstep), stats.supersteps * PROCS as u64);
    assert!(count(SpanKind::RcStep) >= 4, "3 pre-batch + convergence steps");

    // Exchange spans carry the point-to-point traffic, Collective spans
    // the broadcast/reduction traffic; together they cover every message.
    let (msgs, bytes) = events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::Exchange | SpanKind::Collective))
        .fold((0u64, 0u64), |(m, b), e| (m + e.messages, b + e.bytes));
    assert_eq!(msgs, stats.messages);
    assert_eq!(bytes, stats.bytes);

    // Exchange + Collective simulated durations add up to sim_comm_us.
    let comm: f64 = events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::Exchange | SpanKind::Collective))
        .map(|e| e.sim_dur_us)
        .sum();
    assert!((comm - stats.sim_comm_us).abs() < 1e-6);

    // Per-rank aggregation sees every lane: P ranks + the driver.
    assert_eq!(per_rank_busy(&events).len(), PROCS + 1);
}

#[test]
fn report_round_trips_and_gate_accepts_self() {
    let (stats, events) = run_scenario(true);
    let mut report = stats.init_report("itest:pinned");
    report.scale = 150;
    report.procs = PROCS as u64;
    report.seed = 11;
    report.rc_steps = 9;
    report.phases = aggregate_phases(&events);
    report.ranks = per_rank_busy(&events);

    // JSON round-trip is exact, including every f64.
    let text = report.to_json_string();
    let back = RunReport::from_json_str(&text).expect("parses");
    assert_eq!(back, report);

    // Self-comparison never regresses (even at threshold 0).
    let cfg = GateConfig { default_threshold: 0.0, overrides: vec![] };
    let rows = compare(&back, &report, &cfg);
    assert!(!regressed(&rows));
    assert!(rows.iter().all(|r| r.rel_change == 0.0 || !r.gated));
}

#[test]
fn chrome_trace_is_a_valid_json_array() {
    let (_, events) = run_scenario(true);
    let trace = chrome_trace(&events, PROCS);
    let doc = Json::parse(&trace).expect("trace parses");
    let arr = doc.as_arr().expect("top level array");
    // Lane metadata + one entry per span.
    assert_eq!(arr.len(), events.len() + PROCS + 1);
    for entry in arr {
        let ph = entry.str_field("ph").expect("every event has a phase");
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        if ph == "X" {
            assert!(entry.f64_field("dur").expect("complete spans have dur") > 0.0);
        }
    }
}
