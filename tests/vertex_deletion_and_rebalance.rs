//! The paper's future-work extensions: dynamic vertex deletions and
//! explicit load rebalancing.

use anytime_anywhere::core::changes::preferential_batch;
use anytime_anywhere::core::{
    AnytimeEngine, AssignStrategy, DynamicChange, EngineConfig, RebalanceConfig, RebalancePolicy,
};
use anytime_anywhere::graph::apsp::apsp_dijkstra;
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::graph::{AdjGraph, Csr};
use anytime_anywhere::partition::vertex_balance;

fn isolate(g: &mut AdjGraph, v: u32) {
    let nbrs: Vec<u32> = g.neighbors(v).iter().map(|&(t, _)| t).collect();
    for t in nbrs {
        g.remove_edge(v, t).unwrap();
    }
}

#[test]
fn vertex_deletion_matches_scratch_on_isolated_graph() {
    let g = barabasi_albert(60, 2, WeightModel::Unit, 9).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.run_to_convergence();

    let victims = [3u32, 17, 40];
    engine.remove_vertices(&victims).unwrap();
    engine.run_to_convergence();

    let mut expected = g.clone();
    for &v in &victims {
        isolate(&mut expected, v);
    }
    let reference = apsp_dijkstra(&Csr::from_adj(&expected));
    assert_eq!(engine.distances(), reference);
    // Deleted vertices have closeness 0; the rest match the reduced graph.
    let c = engine.closeness();
    for &v in &victims {
        assert_eq!(c[v as usize], 0.0);
    }
}

#[test]
fn deleting_a_hub_changes_other_centralities() {
    let g = barabasi_albert(80, 2, WeightModel::Unit, 15).unwrap();
    let hub = (0..80u32).max_by_key(|&v| g.degree(v)).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.run_to_convergence();
    let before = engine.closeness();
    engine.remove_vertices(&[hub]).unwrap();
    engine.run_to_convergence();
    let after = engine.closeness();
    assert_eq!(after[hub as usize], 0.0);
    assert_ne!(before, after);
}

#[test]
fn deletion_then_addition_round_trip() {
    let g = barabasi_albert(50, 2, WeightModel::Unit, 21).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(3)).unwrap();
    engine.run_to_convergence();
    engine
        .apply_change(&DynamicChange::RemoveVertices(vec![5, 6]), AssignStrategy::RoundRobin)
        .unwrap();
    engine.rc_step();
    let batch = preferential_batch(engine.graph(), 4, 2, 33);
    engine.apply_vertex_additions(&batch, AssignStrategy::CutEdge { seed: 0, tries: 2 }).unwrap();
    engine.run_to_convergence();

    let mut expected = g.clone();
    isolate(&mut expected, 5);
    isolate(&mut expected, 6);
    let base = expected.num_vertices() as u32;
    expected.add_vertices(batch.len());
    for (a, b, w) in batch.global_edges(base) {
        expected.add_edge(a, b, w).unwrap();
    }
    assert_eq!(engine.distances(), apsp_dijkstra(&Csr::from_adj(&expected)));
}

#[test]
fn invalid_deletions_are_rejected() {
    let g = barabasi_albert(20, 2, WeightModel::Unit, 1).unwrap();
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(2)).unwrap();
    assert!(engine.remove_vertices(&[99]).is_err());
    // Deleting an already-isolated vertex twice is fine (idempotent).
    engine.remove_vertices(&[0]).unwrap();
    engine.remove_vertices(&[0]).unwrap();
    engine.run_to_convergence();
    assert_eq!(engine.closeness()[0], 0.0);
}

/// Drives the same skewed CutEdge stream into an engine; returns after the
/// stream without converging so the caller controls the final steps.
fn feed_skewed_stream(engine: &mut AnytimeEngine, rounds: u64) {
    for seed in 0..rounds {
        let batch = preferential_batch(engine.graph(), 6, 2, 70 + seed);
        engine.apply_vertex_additions(&batch, AssignStrategy::CutEdge { seed, tries: 1 }).unwrap();
        engine.rc_step();
    }
}

#[test]
fn background_rebalancer_preserves_bit_identical_fixed_point() {
    let g = barabasi_albert(90, 2, WeightModel::Unit, 11).unwrap();
    let mut cfg = EngineConfig::deterministic(4);
    cfg.rebalance = RebalanceConfig {
        every: 2,
        budget: 8,
        trigger: 1.05,
        ..RebalanceConfig::with_policy(RebalancePolicy::Adaptive)
    };
    let mut adaptive = AnytimeEngine::new(g.clone(), cfg).unwrap();
    let mut oracle = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
    // Same change stream into both: graph evolution is independent of the
    // partition, so only the ownership maps diverge.
    feed_skewed_stream(&mut adaptive, 5);
    feed_skewed_stream(&mut oracle, 5);
    adaptive.run_to_convergence();
    oracle.run_to_convergence();
    let stats = adaptive.stats();
    assert!(stats.migrations > 0, "the background rebalancer never fired");
    assert!(stats.migrated_rows > 0);
    assert!(stats.migration_bytes > 0, "migration traffic must be priced");
    // The migrated run lands on the byte-identical fixed point: closeness
    // is a deterministic function of the exact distance matrix, which is
    // partition-independent.
    let a = adaptive.closeness();
    let b = oracle.closeness();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(adaptive.distances(), oracle.distances());
    // And the whole point: the adaptive run is no more imbalanced than the
    // static one.
    let imb_adaptive = vertex_balance(adaptive.partition());
    let imb_static = vertex_balance(oracle.partition());
    assert!(
        imb_adaptive <= imb_static + 1e-9,
        "adaptive ({imb_adaptive}) worse than static ({imb_static})"
    );
}

#[test]
fn static_policy_never_migrates() {
    let g = barabasi_albert(60, 2, WeightModel::Unit, 5).unwrap();
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
    feed_skewed_stream(&mut engine, 4);
    engine.run_to_convergence();
    let stats = engine.stats();
    assert_eq!(stats.migrations, 0);
    assert_eq!(stats.migrated_rows, 0);
    assert_eq!(stats.migration_bytes, 0);
}

#[test]
fn rebalance_restores_balance_after_skewed_additions() {
    let g = barabasi_albert(100, 2, WeightModel::Unit, 4).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.run_to_convergence();

    // Skew the partition: several batches under CutEdge-PS with all-internal
    // community structure can pile onto few processors.
    for seed in 0..6u64 {
        let batch = preferential_batch(engine.graph(), 8, 2, 50 + seed);
        engine.apply_vertex_additions(&batch, AssignStrategy::CutEdge { seed, tries: 1 }).unwrap();
        engine.rc_step();
    }
    let skewed = vertex_balance(engine.partition());

    engine.rebalance(7).unwrap();
    engine.run_to_convergence();
    let rebalanced = vertex_balance(engine.partition());
    assert!(rebalanced <= skewed + 1e-9, "rebalance made things worse: {skewed} -> {rebalanced}");
    assert!(rebalanced <= 1.2, "still imbalanced: {rebalanced}");

    // And correctness is preserved.
    let reference = apsp_dijkstra(&Csr::from_adj(engine.graph()));
    assert_eq!(engine.distances(), reference);
}
