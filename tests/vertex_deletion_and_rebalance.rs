//! The paper's future-work extensions: dynamic vertex deletions and
//! explicit load rebalancing.

use anytime_anywhere::core::changes::preferential_batch;
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, DynamicChange, EngineConfig};
use anytime_anywhere::graph::apsp::apsp_dijkstra;
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::graph::{AdjGraph, Csr};
use anytime_anywhere::partition::vertex_balance;

fn isolate(g: &mut AdjGraph, v: u32) {
    let nbrs: Vec<u32> = g.neighbors(v).iter().map(|&(t, _)| t).collect();
    for t in nbrs {
        g.remove_edge(v, t).unwrap();
    }
}

#[test]
fn vertex_deletion_matches_scratch_on_isolated_graph() {
    let g = barabasi_albert(60, 2, WeightModel::Unit, 9).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.run_to_convergence();

    let victims = [3u32, 17, 40];
    engine.remove_vertices(&victims).unwrap();
    engine.run_to_convergence();

    let mut expected = g.clone();
    for &v in &victims {
        isolate(&mut expected, v);
    }
    let reference = apsp_dijkstra(&Csr::from_adj(&expected));
    assert_eq!(engine.distances(), reference);
    // Deleted vertices have closeness 0; the rest match the reduced graph.
    let c = engine.closeness();
    for &v in &victims {
        assert_eq!(c[v as usize], 0.0);
    }
}

#[test]
fn deleting_a_hub_changes_other_centralities() {
    let g = barabasi_albert(80, 2, WeightModel::Unit, 15).unwrap();
    let hub = (0..80u32).max_by_key(|&v| g.degree(v)).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.run_to_convergence();
    let before = engine.closeness();
    engine.remove_vertices(&[hub]).unwrap();
    engine.run_to_convergence();
    let after = engine.closeness();
    assert_eq!(after[hub as usize], 0.0);
    assert_ne!(before, after);
}

#[test]
fn deletion_then_addition_round_trip() {
    let g = barabasi_albert(50, 2, WeightModel::Unit, 21).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(3)).unwrap();
    engine.run_to_convergence();
    engine
        .apply_change(&DynamicChange::RemoveVertices(vec![5, 6]), AssignStrategy::RoundRobin)
        .unwrap();
    engine.rc_step();
    let batch = preferential_batch(engine.graph(), 4, 2, 33);
    engine.apply_vertex_additions(&batch, AssignStrategy::CutEdge { seed: 0, tries: 2 }).unwrap();
    engine.run_to_convergence();

    let mut expected = g.clone();
    isolate(&mut expected, 5);
    isolate(&mut expected, 6);
    let base = expected.num_vertices() as u32;
    expected.add_vertices(batch.len());
    for (a, b, w) in batch.global_edges(base) {
        expected.add_edge(a, b, w).unwrap();
    }
    assert_eq!(engine.distances(), apsp_dijkstra(&Csr::from_adj(&expected)));
}

#[test]
fn invalid_deletions_are_rejected() {
    let g = barabasi_albert(20, 2, WeightModel::Unit, 1).unwrap();
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(2)).unwrap();
    assert!(engine.remove_vertices(&[99]).is_err());
    // Deleting an already-isolated vertex twice is fine (idempotent).
    engine.remove_vertices(&[0]).unwrap();
    engine.remove_vertices(&[0]).unwrap();
    engine.run_to_convergence();
    assert_eq!(engine.closeness()[0], 0.0);
}

#[test]
fn rebalance_restores_balance_after_skewed_additions() {
    let g = barabasi_albert(100, 2, WeightModel::Unit, 4).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.run_to_convergence();

    // Skew the partition: several batches under CutEdge-PS with all-internal
    // community structure can pile onto few processors.
    for seed in 0..6u64 {
        let batch = preferential_batch(engine.graph(), 8, 2, 50 + seed);
        engine.apply_vertex_additions(&batch, AssignStrategy::CutEdge { seed, tries: 1 }).unwrap();
        engine.rc_step();
    }
    let skewed = vertex_balance(engine.partition());

    engine.rebalance(7).unwrap();
    engine.run_to_convergence();
    let rebalanced = vertex_balance(engine.partition());
    assert!(rebalanced <= skewed + 1e-9, "rebalance made things worse: {skewed} -> {rebalanced}");
    assert!(rebalanced <= 1.2, "still imbalanced: {rebalanced}");

    // And correctness is preserved.
    let reference = apsp_dijkstra(&Csr::from_adj(engine.graph()));
    assert_eq!(engine.distances(), reference);
}
