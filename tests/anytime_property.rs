//! The *anytime* guarantee (§III): interrupted at any RC step, the engine
//! yields a usable solution whose quality improves monotonically with
//! computation.

use anytime_anywhere::core::changes::preferential_batch;
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, EngineConfig, QualityTracker};
use anytime_anywhere::graph::generators::{barabasi_albert, watts_strogatz, WeightModel};
use anytime_anywhere::graph::INF;

#[test]
fn closeness_error_decreases_monotonically_across_rc_steps() {
    let g = barabasi_albert(150, 2, WeightModel::Unit, 19).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(8)).unwrap();
    let mut tracker = QualityTracker::new(&g, 10);
    tracker.record(0, &engine.closeness());
    for step in 1..=10 {
        if !engine.rc_step() {
            tracker.record(step, &engine.closeness());
            break;
        }
        tracker.record(step, &engine.closeness());
    }
    assert!(tracker.error_is_monotone_nonincreasing(), "samples: {:?}", tracker.samples());
    // Converged error is zero.
    let last = tracker.samples().last().unwrap();
    assert!(last.error < 1e-12, "final error {}", last.error);
    assert!((last.top_k_recall - 1.0).abs() < 1e-12);
}

#[test]
fn distance_estimates_never_increase() {
    let g = watts_strogatz(100, 4, 0.2, WeightModel::Unit, 23).unwrap();
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(5)).unwrap();
    let mut prev = engine.distances();
    loop {
        let more = engine.rc_step();
        let cur = engine.distances();
        for u in 0..100u32 {
            for v in 0..100u32 {
                assert!(
                    cur.get(u, v) <= prev.get(u, v),
                    "d({u},{v}) increased: {} -> {}",
                    prev.get(u, v),
                    cur.get(u, v)
                );
            }
        }
        prev = cur;
        if !more {
            break;
        }
    }
}

#[test]
fn partial_results_are_usable_before_convergence() {
    // After IA + a single RC step, every vertex must already know its
    // intra-partition neighborhood: no all-INF rows (on a connected graph
    // with every part non-singleton this means nonzero closeness).
    let g = barabasi_albert(200, 3, WeightModel::Unit, 29).unwrap();
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
    engine.rc_step();
    let c = engine.closeness();
    let nonzero = c.iter().filter(|&&x| x > 0.0).count();
    assert!(nonzero >= 190, "only {nonzero} vertices have usable estimates");
}

#[test]
fn quality_improves_through_dynamic_changes_too() {
    // After an injection, estimates for the final graph keep improving
    // monotonically (min-merge never regresses).
    let g = barabasi_albert(100, 2, WeightModel::Unit, 31).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.rc_step();
    let batch = preferential_batch(&g, 10, 2, 7);
    engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).unwrap();

    let mut prev = engine.distances();
    loop {
        let more = engine.rc_step();
        let cur = engine.distances();
        let n = cur.n();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                assert!(cur.get(u, v) <= prev.get(u, v));
            }
        }
        prev = cur;
        if !more {
            break;
        }
    }
    // And nothing is left unreachable that should not be.
    let unreachable = (0..prev.n() as u32)
        .flat_map(|u| (0..prev.n() as u32).map(move |v| (u, v)))
        .filter(|&(u, v)| prev.get(u, v) == INF)
        .count();
    assert_eq!(unreachable, 0, "graph is connected after additions");
}
