//! End-to-end correctness: the distributed engine's converged fixed point
//! must equal single-machine reference APSP / closeness on every kind of
//! graph, processor count, and execution mode.

use anytime_anywhere::core::{AnytimeEngine, DdPartitioner, EngineConfig};
use anytime_anywhere::graph::apsp::apsp_dijkstra;
use anytime_anywhere::graph::closeness::closeness_exact;
use anytime_anywhere::graph::generators::*;
use anytime_anywhere::graph::{AdjGraph, Csr};
use anytime_anywhere::runtime::ExecutionMode;

fn assert_engine_exact(g: &AdjGraph, config: EngineConfig) {
    let reference = apsp_dijkstra(&Csr::from_adj(g));
    let mut engine = AnytimeEngine::new(g.clone(), config).unwrap();
    let summary = engine.run_to_convergence();
    assert!(summary.converged, "did not converge in {} steps", summary.steps);
    let got = engine.distances();
    let n = g.num_vertices();
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            assert_eq!(
                got.get(u, v),
                reference.get(u, v),
                "d({u},{v}) mismatch with {} procs",
                engine.procs()
            );
        }
    }
    // Closeness agrees too.
    let exact_c = closeness_exact(&Csr::from_adj(g));
    for (a, b) in engine.closeness().iter().zip(&exact_c) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn scale_free_graph_all_proc_counts() {
    let g = barabasi_albert(150, 2, WeightModel::Unit, 11).unwrap();
    for p in [1, 2, 3, 8] {
        assert_engine_exact(&g, EngineConfig::deterministic(p));
    }
}

#[test]
fn weighted_scale_free_graph() {
    let g = barabasi_albert(120, 3, WeightModel::UniformRange { lo: 1, hi: 9 }, 5).unwrap();
    assert_engine_exact(&g, EngineConfig::deterministic(4));
}

#[test]
fn erdos_renyi_including_disconnected() {
    // Sparse ER is very likely disconnected: INF handling must be exact.
    let g = erdos_renyi(100, 60, WeightModel::Unit, 3).unwrap();
    assert_engine_exact(&g, EngineConfig::deterministic(4));
}

#[test]
fn small_world_graph() {
    let g = watts_strogatz(140, 6, 0.2, WeightModel::Unit, 8).unwrap();
    assert_engine_exact(&g, EngineConfig::deterministic(5));
}

#[test]
fn community_graph_with_multilevel_dd() {
    let m = PlantedPartition { communities: 4, size: 30, p_in: 0.3, p_out: 0.01 };
    let (g, _) = planted_partition(&m, WeightModel::Unit, 9).unwrap();
    assert_engine_exact(&g, EngineConfig::deterministic(4));
}

#[test]
fn every_dd_partitioner_converges_to_the_same_answer() {
    let g = barabasi_albert(90, 2, WeightModel::Unit, 13).unwrap();
    for dd in [
        DdPartitioner::Multilevel { seed: 1 },
        DdPartitioner::Block,
        DdPartitioner::RoundRobin,
        DdPartitioner::Hash,
        DdPartitioner::Random { seed: 2 },
    ] {
        let mut cfg = EngineConfig::deterministic(4);
        cfg.dd = dd;
        assert_engine_exact(&g, cfg);
    }
}

#[test]
fn parallel_mode_matches_sequential() {
    let g = barabasi_albert(130, 2, WeightModel::UniformRange { lo: 1, hi: 4 }, 21).unwrap();
    let mut seq_cfg = EngineConfig::deterministic(6);
    seq_cfg.cluster.mode = ExecutionMode::Sequential;
    let mut par_cfg = EngineConfig::with_procs(6);
    par_cfg.cluster.mode = ExecutionMode::Parallel;

    let mut e1 = AnytimeEngine::new(g.clone(), seq_cfg).unwrap();
    e1.run_to_convergence();
    let mut e2 = AnytimeEngine::new(g.clone(), par_cfg).unwrap();
    e2.run_to_convergence();
    assert_eq!(e1.distances(), e2.distances());
}

#[test]
fn tiny_message_cap_still_converges() {
    let g = barabasi_albert(80, 2, WeightModel::Unit, 2).unwrap();
    let mut cfg = EngineConfig::deterministic(4);
    cfg.message_cap_bytes = 64; // forces one row per message
    assert_engine_exact(&g, cfg);
}

#[test]
fn more_procs_than_vertices() {
    let g = barabasi_albert(6, 2, WeightModel::Unit, 1).unwrap();
    assert_engine_exact(&g, EngineConfig::deterministic(10));
}

#[test]
fn isolated_vertices_and_empty_parts() {
    let mut g = AdjGraph::with_vertices(20);
    for i in 0..9u32 {
        g.add_edge(i, i + 1, 2).unwrap();
    }
    // Vertices 10..20 isolated.
    assert_engine_exact(&g, EngineConfig::deterministic(4));
}

#[test]
fn static_convergence_takes_few_steps() {
    // For static graphs the productive steps are bounded by the processor
    // chain; P=4 on a connected graph must converge well within P+2 steps.
    let g = barabasi_albert(100, 2, WeightModel::Unit, 6).unwrap();
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
    let summary = engine.run_to_convergence();
    assert!(summary.converged);
    assert!(summary.steps <= 6, "took {} steps", summary.steps);
}

#[test]
fn zero_procs_is_rejected() {
    let g = AdjGraph::with_vertices(3);
    assert!(AnytimeEngine::new(g, EngineConfig::deterministic(0)).is_err());
}

#[test]
fn external_partition_from_compressed_store() {
    // The compressed-backend path: DD runs on a CompressedGraph (the way a
    // graph too large for adjacency lists would be partitioned), and the
    // engine adopts the externally computed assignment. The converged
    // answer must match the reference exactly, and the same partition fed
    // through `DdPartitioner::Multilevel` must yield the identical engine
    // behaviour (the partitioners are backend-independent).
    use anytime_anywhere::partition::{MultilevelPartitioner, Partitioner};
    use anytime_anywhere::store::CompressedGraph;

    let g = barabasi_albert(150, 2, WeightModel::UniformRange { lo: 1, hi: 5 }, 13).unwrap();
    let c = CompressedGraph::from_store(&g).unwrap();
    let part = MultilevelPartitioner::seeded(0).partition(&c, 4).unwrap();
    let via_plain = MultilevelPartitioner::seeded(0).partition(&g, 4).unwrap();
    assert_eq!(part, via_plain, "partition must not depend on the backend");

    let mut engine =
        AnytimeEngine::with_partition(g.clone(), part, EngineConfig::deterministic(4)).unwrap();
    let summary = engine.run_to_convergence();
    assert!(summary.converged);
    let exact_c = closeness_exact(&Csr::from_adj(&g));
    for (a, b) in engine.closeness().iter().zip(&exact_c) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn external_partition_must_match_graph_and_procs() {
    use anytime_anywhere::partition::Partition;
    let g = barabasi_albert(20, 2, WeightModel::Unit, 1).unwrap();
    // Wrong vertex count.
    let short = Partition::new(vec![0; 10], 2).unwrap();
    assert!(
        AnytimeEngine::with_partition(g.clone(), short, EngineConfig::deterministic(2)).is_err()
    );
    // Wrong k.
    let wrong_k = Partition::new(vec![0; 20], 3).unwrap();
    assert!(AnytimeEngine::with_partition(g, wrong_k, EngineConfig::deterministic(2)).is_err());
}
