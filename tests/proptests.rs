//! Property-based tests over the whole stack: random graphs, random
//! partitions, random dynamic-change streams — the distributed engine must
//! always agree with the single-machine reference.

use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, EngineConfig, NewVertex, VertexBatch};
use anytime_anywhere::graph::apsp::{apsp_dijkstra, floyd_warshall};
use anytime_anywhere::graph::community::{louvain, modularity, LouvainConfig};
use anytime_anywhere::graph::{AdjGraph, Csr, GraphBuilder};
use anytime_anywhere::partition::{cut_edges, vertex_balance, MultilevelPartitioner, Partitioner};
use proptest::prelude::*;

/// An arbitrary simple weighted graph with `n ∈ [2, 40]` vertices.
fn arb_graph() -> impl Strategy<Value = AdjGraph> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..10), 0..(3 * n));
        edges.prop_map(move |edges| {
            let mut b = GraphBuilder::with_vertices(n);
            for (u, v, w) in edges {
                b.edge(u, v, w);
            }
            b.build().expect("builder output is always valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dijkstra_apsp_equals_floyd_warshall(g in arb_graph()) {
        let csr = Csr::from_adj(&g);
        prop_assert_eq!(apsp_dijkstra(&csr), floyd_warshall(&csr));
    }

    #[test]
    fn engine_fixed_point_equals_reference(g in arb_graph(), p in 1usize..6) {
        let reference = apsp_dijkstra(&Csr::from_adj(&g));
        let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(p)).unwrap();
        let summary = engine.run_to_convergence();
        prop_assert!(summary.converged);
        prop_assert_eq!(engine.distances(), reference);
    }

    #[test]
    fn dynamic_addition_equals_scratch(
        g in arb_graph(),
        p in 2usize..5,
        count in 1usize..6,
        strategy_pick in 0u8..3,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let base = g.num_vertices() as u32;
        // Random batch: each new vertex gets 0–3 edges to anything earlier.
        let mut vertices = Vec::new();
        let mut used = std::collections::HashSet::new();
        for i in 0..count {
            let me = base + i as u32;
            let mut edges = Vec::new();
            for _ in 0..rng.gen_range(0..4u32) {
                let t = rng.gen_range(0..me);
                let key = (t.min(me), t.max(me));
                if used.insert(key) {
                    edges.push((t, rng.gen_range(1..6u32)));
                }
            }
            vertices.push(NewVertex { edges });
        }
        let batch = VertexBatch { vertices };
        let strategy = match strategy_pick {
            0 => AssignStrategy::RoundRobin,
            1 => AssignStrategy::CutEdge { seed, tries: 1 },
            _ => AssignStrategy::Repartition { seed },
        };

        let mut full = g.clone();
        full.add_vertices(batch.len());
        for (a, b, w) in batch.global_edges(base) {
            full.add_edge(a, b, w).unwrap();
        }
        let reference = apsp_dijkstra(&Csr::from_adj(&full));

        let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(p)).unwrap();
        for _ in 0..(seed % 4) {
            engine.rc_step();
        }
        engine.apply_vertex_additions(&batch, strategy).unwrap();
        let summary = engine.run_to_convergence();
        prop_assert!(summary.converged);
        prop_assert_eq!(engine.distances(), reference);
    }

    #[test]
    fn multilevel_partition_is_valid_and_balanced(g in arb_graph(), k in 1usize..6) {
        let part = MultilevelPartitioner::seeded(7).partition(&g, k).unwrap();
        prop_assert_eq!(part.len(), g.num_vertices());
        prop_assert!(part.assignment().iter().all(|&p| (p as usize) < k));
        if g.num_vertices() >= 2 * k {
            // Reasonable balance on non-degenerate instances.
            prop_assert!(vertex_balance(&part) <= 2.0, "balance {}", vertex_balance(&part));
        }
        // Cut never exceeds total edge count.
        prop_assert!(cut_edges(&g, &part) <= g.num_edges());
    }

    #[test]
    fn louvain_labels_are_valid_and_no_worse_than_singletons(g in arb_graph()) {
        let a = louvain(&g, &LouvainConfig::default());
        prop_assert_eq!(a.label.len(), g.num_vertices());
        prop_assert!(a.label.iter().all(|&l| (l as usize) < a.num_communities.max(1)));
        let singletons: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let q0 = modularity(&g, &singletons);
        prop_assert!(a.modularity >= q0 - 1e-9);
        // Modularity is bounded.
        prop_assert!(a.modularity <= 1.0 + 1e-9 && a.modularity >= -0.5 - 1e-9);
    }

    #[test]
    fn edge_deletion_equals_scratch(g in arb_graph(), p in 1usize..4, pick in 0usize..50) {
        prop_assume!(g.num_edges() > 0);
        let (u, v, _) = g.edges().nth(pick % g.num_edges()).unwrap();
        let mut full = g.clone();
        full.remove_edge(u, v).unwrap();
        let reference = apsp_dijkstra(&Csr::from_adj(&full));
        let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(p)).unwrap();
        engine.run_to_convergence();
        engine.remove_edge(u, v).unwrap();
        engine.run_to_convergence();
        prop_assert_eq!(engine.distances(), reference);
    }
}
