//! The ingest → compute → publish pipeline's serving contract: strictly
//! increasing epochs, sound and tightening certified bounds, snapshot
//! isolation for concurrent readers, and coalescing-equivalence between
//! the submitted-stream path and the direct mutators.

use anytime_anywhere::core::changes::{preferential_batch, DynamicChange};
use anytime_anywhere::core::{
    AnytimeEngine, AssignStrategy, BoundsMode, EngineConfig, PublishedView,
};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::serve::ServeHandle;
use std::sync::Arc;

fn engine(n: usize, procs: usize, seed: u64) -> AnytimeEngine {
    let g = barabasi_albert(n, 2, WeightModel::Unit, seed).unwrap();
    AnytimeEngine::new(g, EngineConfig::deterministic(procs)).unwrap()
}

/// The first `count` vertex pairs (skipping `avoid`) with no edge between
/// them — deterministic, and stable under vertex-addition batches (those
/// only attach new vertices).
fn non_edges(g: &anytime_anywhere::graph::AdjGraph, count: usize, avoid: u32) -> Vec<(u32, u32)> {
    let n = g.num_vertices() as u32;
    let mut out = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if u != avoid && v != avoid && !g.has_edge(u, v) {
                out.push((u, v));
                if out.len() == count {
                    return out;
                }
            }
        }
    }
    out
}

#[test]
fn epoch_ids_are_strictly_increasing_across_every_publishing_path() {
    let mut e = engine(120, 4, 5);
    let h = ServeHandle::attach(&e);
    let mut last = 0u64;
    let mut observe = |h: &ServeHandle, what: &str| {
        let epoch = h.epoch();
        assert!(epoch > last, "{what}: epoch {epoch} did not advance past {last}");
        last = epoch;
    };
    observe(&h, "construction");
    e.rc_step();
    observe(&h, "rc step");
    let (eu, ev) = non_edges(e.graph(), 1, u32::MAX)[0];
    let batch = preferential_batch(e.graph(), 6, 2, 9);
    e.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).unwrap();
    observe(&h, "vertex batch drain");
    e.add_edge(eu, ev, 2).unwrap();
    observe(&h, "edge add drain");
    e.submit(DynamicChange::SetWeight { u: eu, v: ev, w: 1 }).unwrap();
    assert_eq!(e.pending_changes(), 1);
    e.drain_changes().unwrap();
    observe(&h, "explicit drain");
    e.run_to_convergence();
    observe(&h, "convergence");
    e.rebalance(3).unwrap();
    observe(&h, "rebalance");
    assert_eq!(e.epochs_published(), last);
}

#[test]
fn published_views_remain_valid_snapshots_after_the_engine_moves_on() {
    let mut e = engine(100, 3, 8);
    let h = ServeHandle::attach(&e);
    let early = h.view();
    e.run_to_convergence();
    let late = h.view();
    // The early epoch is frozen: same answer as when it was published,
    // untouched by later epochs.
    assert!(early.epoch < late.epoch);
    assert_eq!(early.num_vertices(), late.num_vertices());
    assert!(late.converged);
    assert!(!early.converged);
}

#[test]
fn certified_bounds_cover_the_exact_answer_and_tighten_per_epoch() {
    let g = barabasi_albert(90, 2, WeightModel::UniformRange { lo: 1, hi: 4 }, 13).unwrap();
    let mut cfg = EngineConfig::deterministic(4);
    cfg.publish_bounds = BoundsMode::Certified;
    let mut e = AnytimeEngine::new(g, cfg).unwrap();
    let h = ServeHandle::attach(&e);

    // Collect one view per epoch of a quiescing (no further changes) run.
    let mut views: Vec<Arc<PublishedView>> = vec![h.view()];
    while e.rc_step() {
        views.push(h.view());
    }
    views.push(h.view());
    let oracle = e.closeness(); // exact at convergence

    for (i, view) in views.iter().enumerate() {
        assert!(view.has_bounds());
        for (v, exact) in oracle.iter().enumerate() {
            let c = view.closeness()[v];
            let b = view.error_bound(v as u32).unwrap();
            assert!(
                (c - exact).abs() <= b + 1e-9,
                "epoch {i}: |{c} - {exact}| > bound {b} at vertex {v}"
            );
        }
    }
    // On a quiescing run the graph never changes, so every per-vertex
    // bound is non-increasing across epochs.
    for w in views.windows(2) {
        for v in 0..w[0].num_vertices() {
            assert!(
                w[1].error_bound(v as u32).unwrap() <= w[0].error_bound(v as u32).unwrap() + 1e-12,
                "bound widened at vertex {v}"
            );
        }
    }
    // With unit weights the hop bound is exact, so at convergence the
    // certified interval collapses to zero width.
    let mut cfg = EngineConfig::deterministic(4);
    cfg.publish_bounds = BoundsMode::Certified;
    let mut unit =
        AnytimeEngine::new(barabasi_albert(90, 2, WeightModel::Unit, 13).unwrap(), cfg).unwrap();
    let hu = ServeHandle::attach(&unit);
    unit.run_to_convergence();
    let last = hu.view();
    for v in 0..last.num_vertices() {
        assert!(last.error_bound(v as u32).unwrap() < 1e-9);
    }
}

#[test]
fn concurrent_readers_see_complete_monotone_and_fresh_views() {
    let mut e = engine(200, 4, 21);
    let h = ServeHandle::attach(&e);
    let n = e.graph().num_vertices();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let h = h.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                loop {
                    let view = h.view();
                    assert!(view.epoch >= last, "epoch went backwards");
                    last = view.epoch;
                    // Complete, never torn: every vertex of the epoch
                    // answers, and top-k agrees with the same snapshot.
                    assert!(view.num_vertices() >= n);
                    assert!(view.point((view.num_vertices() - 1) as u32).is_some());
                    let k = view.top_k(3);
                    assert_eq!(k.len(), 3.min(view.num_vertices()));
                    if view.converged && view.changes_applied > 0 {
                        return last;
                    }
                }
            })
        })
        .collect();
    // Writer: converge, grow the graph mid-serving, re-converge.
    e.run_to_convergence();
    let batch = preferential_batch(e.graph(), 10, 2, 3);
    e.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).unwrap();
    let summary = e.run_to_convergence();
    assert!(summary.converged);
    let final_epoch = e.epochs_published();
    for r in readers {
        let seen = r.join().expect("reader panicked");
        // Never stale beyond the latest epoch: the reader's exit view is
        // one the engine actually published, at most the final epoch.
        assert!(seen <= final_epoch);
    }
    // The handle itself is fully fresh once the writer is done.
    assert_eq!(h.epoch(), final_epoch);
}

#[test]
fn submitted_stream_converges_to_the_same_answer_as_direct_mutators() {
    let direct = &mut engine(130, 4, 17);
    let streamed = &mut engine(130, 4, 17);

    // Two edges absent from the seed graph, away from the vertex we
    // remove; vertex batches never touch old-old pairs, so they stay
    // absent until we add them.
    let pairs = non_edges(direct.graph(), 2, 40);
    let ((a0, a1), (b0, b1)) = (pairs[0], pairs[1]);

    // Direct path: one mutator call per change, applied immediately.
    let batch = preferential_batch(direct.graph(), 8, 2, 2);
    direct.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).unwrap();
    direct.add_edge(a0, a1, 3).unwrap();
    direct.set_edge_weight(a0, a1, 1).unwrap();
    direct.add_edge(b0, b1, 2).unwrap();
    direct.remove_edge(b0, b1).unwrap();
    direct.remove_vertices(&[40]).unwrap();
    direct.run_to_convergence();

    // Streamed path: the same changes submitted up front, coalesced in
    // the log, drained at the first RC barrier.
    streamed
        .submit_with_strategy(DynamicChange::AddVertices(batch), AssignStrategy::RoundRobin)
        .unwrap();
    streamed.submit(DynamicChange::AddEdge { u: a0, v: a1, w: 3 }).unwrap();
    streamed.submit(DynamicChange::SetWeight { u: a0, v: a1, w: 1 }).unwrap();
    streamed.submit(DynamicChange::AddEdge { u: b0, v: b1, w: 2 }).unwrap();
    streamed.submit(DynamicChange::RemoveEdge { u: b0, v: b1 }).unwrap();
    streamed.submit(DynamicChange::RemoveVertices(vec![40])).unwrap();
    let stats_before = streamed.ingest_stats();
    assert_eq!(stats_before.submitted, 6);
    assert!(streamed.pending_changes() < 6, "reweight and add+remove coalesce in the log");
    streamed.run_to_convergence();

    let stats = streamed.ingest_stats();
    assert!(stats.coalesced > 0);
    assert_eq!(stats.submitted, stats.coalesced + stats.applied);
    assert_eq!(streamed.pending_changes(), 0);
    // Same graph, same unique fixed point, same answer.
    assert_eq!(direct.graph().num_vertices(), streamed.graph().num_vertices());
    assert_eq!(direct.distances(), streamed.distances());
    assert_eq!(direct.closeness(), streamed.closeness());
    // Coalescing means the compute layer executed fewer changes.
    assert!(streamed.changes_applied() < direct.changes_applied());
}

#[test]
fn submit_validates_against_the_projected_graph() {
    let mut e = engine(50, 2, 30);
    // Out of range, self-loop, zero weight: rejected at submit time.
    assert!(e.submit(DynamicChange::AddEdge { u: 0, v: 500, w: 1 }).is_err());
    assert!(e.submit(DynamicChange::AddEdge { u: 3, v: 3, w: 1 }).is_err());
    assert!(e.submit(DynamicChange::RemoveVertices(vec![50])).is_err());
    // A new vertex only exists in the projection — but edges to it are
    // valid once the batch ahead of them in the queue lands.
    let batch = preferential_batch(e.graph(), 2, 2, 7);
    e.submit_with_strategy(DynamicChange::AddVertices(batch), AssignStrategy::RoundRobin).unwrap();
    e.submit(DynamicChange::AddEdge { u: 0, v: 50, w: 2 }).unwrap();
    assert!(e.submit(DynamicChange::AddEdge { u: 0, v: 52, w: 2 }).is_err(), "beyond projection");
    e.drain_changes().unwrap();
    assert!(e.graph().has_edge(0, 50));
    let summary = e.run_to_convergence();
    assert!(summary.converged);
}
