//! Cross-checks between the SNA measures on generated graphs — the kind of
//! sanity invariants a downstream SNA user relies on.

use anytime_anywhere::graph::centrality::{
    betweenness_centrality, clustering_coefficients, degree_centrality, eigenvector_centrality,
};
use anytime_anywhere::graph::closeness::{closeness_exact, top_k};
use anytime_anywhere::graph::generators::*;
use anytime_anywhere::graph::Csr;

#[test]
fn hubs_dominate_every_centrality_on_scale_free_graphs() {
    let g = barabasi_albert(400, 2, WeightModel::Unit, 3).unwrap();
    let csr = Csr::from_adj(&g);
    let hub = (0..400u32).max_by_key(|&v| csr.degree(v)).unwrap();

    let deg = degree_centrality(&csr);
    let close = closeness_exact(&csr);
    let betw = betweenness_centrality(&csr);
    let eig = eigenvector_centrality(&csr, 300, 1e-10);

    // The top-degree hub should rank inside the top 5 of every measure.
    for (name, values) in
        [("degree", &deg), ("closeness", &close), ("betweenness", &betw), ("eigenvector", &eig)]
    {
        let top = top_k(values, 5);
        assert!(top.contains(&hub), "{name}: hub {hub} not in top-5 {top:?}");
    }
}

#[test]
fn small_world_graphs_cluster_more_than_random() {
    let ws = watts_strogatz(600, 6, 0.05, WeightModel::Unit, 4).unwrap();
    let er = erdos_renyi(600, 1800, WeightModel::Unit, 4).unwrap();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let c_ws = mean(&clustering_coefficients(&Csr::from_adj(&ws)));
    let c_er = mean(&clustering_coefficients(&Csr::from_adj(&er)));
    assert!(c_ws > 3.0 * c_er, "WS {c_ws} vs ER {c_er}");
}

#[test]
fn betweenness_total_is_bounded_by_pair_count() {
    // Σ betweenness ≤ number of ordered intermediate pair assignments:
    // each unordered pair contributes a total dependency ≤ (path length),
    // but a crude bound suffices: every pair (s,t) distributes exactly
    // (number of intermediate vertices on its shortest paths) ≤ n.
    let g = barabasi_albert(150, 2, WeightModel::Unit, 6).unwrap();
    let csr = Csr::from_adj(&g);
    let b = betweenness_centrality(&csr);
    let n = 150.0f64;
    let total: f64 = b.iter().sum();
    assert!(total <= n * n * n);
    assert!(b.iter().all(|&x| x >= -1e-9));
}

#[test]
fn centrality_functions_handle_degenerate_graphs() {
    use anytime_anywhere::graph::AdjGraph;
    let empty = Csr::from_adj(&AdjGraph::new());
    assert!(betweenness_centrality(&empty).is_empty());
    assert!(degree_centrality(&empty).is_empty());
    let single = Csr::from_adj(&AdjGraph::with_vertices(1));
    assert_eq!(degree_centrality(&single), vec![0.0]);
    assert_eq!(betweenness_centrality(&single), vec![0.0]);
    assert_eq!(clustering_coefficients(&single), vec![0.0]);
}
