//! Large-graph smoke: the scaled-down rehearsal of the 10M-vertex /
//! 100M-edge single-machine target.
//!
//! Streams a ≥1M-vertex Barabási–Albert graph from the streaming generator
//! through the external-memory pair sorter into the compressed gap-coded
//! store, checks the ≤4 bytes/arc successor-structure budget, runs domain
//! decomposition directly on the compressed backend, and converges
//! single-source distances with the worklist fixed-point kernel, verified
//! against a Dijkstra reference.
//!
//! The body is guarded by `AAA_LARGE_SMOKE=1` so plain `cargo test` stays
//! fast; CI's `large-smoke` job opts in. Scale can be raised with
//! `AAA_LARGE_SMOKE_SCALE` (vertices; default 1,000,000) and
//! `AAA_LARGE_SMOKE_M` (BA attachment count; default 5) — the full
//! headline target is `AAA_LARGE_SMOKE_SCALE=10000000 AAA_LARGE_SMOKE_M=10`.

use anytime_anywhere::graph::generators::{ba_stream, WeightModel};
use anytime_anywhere::partition::{MultilevelPartitioner, Partitioner};
use anytime_anywhere::store::{algo, CompressedGraph, PairSorter};
use std::time::Instant;

#[test]
fn streamed_million_vertex_graph_builds_partitions_and_converges() {
    if std::env::var("AAA_LARGE_SMOKE").ok().as_deref() != Some("1") {
        eprintln!("large-graph smoke skipped; set AAA_LARGE_SMOKE=1 to run");
        return;
    }
    let n: usize = std::env::var("AAA_LARGE_SMOKE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let m: usize =
        std::env::var("AAA_LARGE_SMOKE_M").ok().and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed = 42;

    // Stream the generator through the external-memory ingest with a small
    // budget so the run genuinely spills and merges from disk.
    let started = Instant::now();
    let dir = std::env::temp_dir().join(format!("aaa-large-smoke-{}", std::process::id()));
    let stream = ba_stream(n, m, WeightModel::Unit, seed).expect("generator params valid");
    // The budget scales with n so the run always spills a few dozen runs
    // without the merge fanning out past the open-file limit.
    let budget = (n * 4).max(2 << 20);
    let mut sorter = PairSorter::new(&dir, budget).expect("scratch directory available");
    for (u, v, w) in stream {
        sorter.push_edge(u, v, w).expect("generated edges are valid");
    }
    let runs = sorter.runs_spilled();
    let arcs = sorter.finish().expect("merge sorted runs");
    let g = CompressedGraph::from_sorted_arcs(n, false, arcs).expect("compressed build");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "built compressed store: {} vertices, {} edges, {} spilled runs, {:.1}s",
        g.num_vertices(),
        g.num_edges(),
        runs,
        started.elapsed().as_secs_f64()
    );
    assert!(runs > 0, "the ingest should have spilled at this budget");
    assert_eq!(g.num_vertices(), n);

    // The headline storage budget: successor structure ≤ 4 bytes/arc
    // (CSR spends 8 on the target+weight pair alone).
    let bytes_per_arc = g.data_bytes() as f64 / g.num_arcs().max(1) as f64;
    eprintln!("successor structure: {bytes_per_arc:.2} bytes/arc");
    assert!(
        bytes_per_arc <= 4.0,
        "successor structure spends {bytes_per_arc:.2} bytes/arc, budget is 4"
    );

    // Domain decomposition runs directly on the compressed backend.
    let started = Instant::now();
    let part = MultilevelPartitioner::seeded(0).partition(&g, 8).expect("partition");
    eprintln!("partitioned into 8 parts in {:.1}s", started.elapsed().as_secs_f64());
    assert_eq!(part.len(), n);
    assert_eq!(part.k(), 8);

    // Converge single-source distances with the worklist fixed point and
    // verify the result bit-for-bit against the Dijkstra reference.
    let started = Instant::now();
    let (dist, rounds) = algo::sssp_fixed_point(&g, 0);
    eprintln!("fixed point converged in {rounds} rounds, {:.1}s", started.elapsed().as_secs_f64());
    let reference = algo::dijkstra(&g, 0);
    assert_eq!(dist, reference, "fixed point must agree with Dijkstra");
    let reached = dist.iter().filter(|&&d| d != anytime_anywhere::graph::INF).count();
    eprintln!("{reached} of {n} vertices reachable from source 0");
    assert!(reached > n / 2, "a BA graph is connected; most vertices should be reached");
}
