//! Equivalence properties for the metric abstraction (S31).
//!
//! Two contracts, both bit-level:
//!
//! 1. **Closeness is unchanged by the refactor.** An engine that also
//!    maintains betweenness must publish exactly the closeness column,
//!    epoch numbering and convergence state of a closeness-only engine —
//!    per published epoch, across dynamic churn, checkpoint/restore and a
//!    forced rebalance. The extra metric rides along driver-side and must
//!    never perturb the priced computation.
//! 2. **Incremental betweenness is exact at convergence.** After every
//!    drain, once the DV rows re-converge, the published betweenness
//!    column equals the deterministic Brandes oracle bit-for-bit (same
//!    kernel, same canonical tie-break, same summation order) — on both
//!    the sequential and the parallel executor.

use anytime_anywhere::core::{
    AnytimeEngine, AssignStrategy, DynamicChange, EngineConfig, MetricKind, NewVertex, VertexBatch,
};
use anytime_anywhere::graph::centrality::betweenness_exact_det;
use anytime_anywhere::graph::{AdjGraph, Csr, GraphBuilder};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// An arbitrary simple weighted graph with `n ∈ [2, 24]` vertices.
/// Strictly positive weights — the path-counting kernel requires them.
fn arb_graph() -> impl Strategy<Value = AdjGraph> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..8), 0..(3 * n));
        edges.prop_map(move |edges| {
            let mut b = GraphBuilder::with_vertices(n);
            for (u, v, w) in edges {
                b.edge(u, v, w);
            }
            b.build().expect("builder output is always valid")
        })
    })
}

/// Engine config with the given executor and metric selection.
fn config(p: usize, parallel: bool, betweenness: bool) -> EngineConfig {
    let mut c = if parallel { EngineConfig::with_procs(p) } else { EngineConfig::deterministic(p) };
    if betweenness {
        c.metrics = vec![MetricKind::Betweenness];
    }
    c
}

/// Submits one random structural change (edge add / remove / reweight, or
/// a small vertex batch) and drains it at the barrier.
fn apply_random_change(engine: &mut AnytimeEngine, rng: &mut ChaCha8Rng) {
    let g = engine.graph().clone();
    let n = g.num_vertices() as u32;
    let existing: Vec<(u32, u32, u32)> = g.edges().collect();
    let change = match rng.gen_range(0..4u32) {
        0 if !existing.is_empty() => {
            let (u, v, _) = existing[rng.gen_range(0..existing.len())];
            DynamicChange::RemoveEdge { u, v }
        }
        1 if !existing.is_empty() => {
            let (u, v, w) = existing[rng.gen_range(0..existing.len())];
            DynamicChange::SetWeight { u, v, w: (w % 7) + 1 }
        }
        2 => {
            let me = n;
            let edges = (0..rng.gen_range(1..3u32))
                .map(|_| (rng.gen_range(0..me), rng.gen_range(1..6u32)))
                .collect::<Vec<_>>();
            let mut dedup = edges;
            dedup.sort_unstable_by_key(|e| e.0);
            dedup.dedup_by_key(|e| e.0);
            DynamicChange::AddVertices(VertexBatch { vertices: vec![NewVertex { edges: dedup }] })
        }
        _ => {
            // A fresh edge; fall back to a reweight-to-same when the graph
            // is (nearly) complete and no free pair turns up.
            let mut pick = None;
            for _ in 0..32 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && !g.has_edge(u, v) {
                    pick = Some((u, v));
                    break;
                }
            }
            match pick {
                Some((u, v)) => DynamicChange::AddEdge { u, v, w: rng.gen_range(1..6) },
                None => return,
            }
        }
    };
    let strategy = AssignStrategy::RoundRobin;
    match change {
        DynamicChange::AddVertices(batch) => {
            engine.apply_vertex_additions(&batch, strategy).expect("batch applies");
        }
        other => {
            engine.submit(other).expect("change validates against the live graph");
            engine.drain_changes().expect("drain applies");
        }
    }
}

/// The published betweenness column must equal the deterministic Brandes
/// oracle on the engine's current graph, bit for bit.
fn assert_matches_oracle(engine: &AnytimeEngine) -> Result<(), TestCaseError> {
    let view = engine.published();
    let col = view.metric_values(MetricKind::Betweenness).expect("betweenness carried");
    let oracle = betweenness_exact_det(&Csr::from_adj(engine.graph()));
    prop_assert_eq!(col, oracle);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Contract 1: per-epoch closeness bit-equality between a
    /// closeness-only engine and one that also maintains betweenness,
    /// stepped in lockstep through convergence and random churn.
    #[test]
    fn betweenness_engine_publishes_identical_closeness(
        g in arb_graph(),
        p in 1usize..4,
        rounds in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut a = AnytimeEngine::new(g.clone(), config(p, false, false)).unwrap();
        let mut b = AnytimeEngine::new(g, config(p, false, true)).unwrap();
        let lockstep = |a: &mut AnytimeEngine, b: &mut AnytimeEngine| -> Result<(), TestCaseError> {
            loop {
                let (ma, mb) = (a.rc_step(), b.rc_step());
                prop_assert_eq!(ma, mb);
                let (va, vb) = (a.published(), b.published());
                prop_assert_eq!(va.epoch, vb.epoch);
                prop_assert_eq!(va.converged, vb.converged);
                prop_assert_eq!(va.closeness(), vb.closeness());
                prop_assert_eq!(va.top_k(5), vb.top_k(5));
                if !ma {
                    return Ok(());
                }
            }
        };
        lockstep(&mut a, &mut b)?;
        let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..rounds {
            apply_random_change(&mut a, &mut rng_a);
            apply_random_change(&mut b, &mut rng_b);
            lockstep(&mut a, &mut b)?;
        }
        prop_assert_eq!(a.epochs_published(), b.epochs_published());
        prop_assert_eq!(a.distances(), b.distances());
        // The extra column answered alongside, and it is exact here.
        assert_matches_oracle(&b)?;
    }

    /// Contract 2 on the sequential executor: the incremental column is
    /// bit-equal to the Brandes oracle at convergence after every drain.
    #[test]
    fn incremental_betweenness_matches_oracle_across_churn(
        g in arb_graph(),
        p in 1usize..4,
        rounds in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut engine = AnytimeEngine::new(g, config(p, false, true)).unwrap();
        prop_assert!(engine.run_to_convergence().converged);
        assert_matches_oracle(&engine)?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..rounds {
            apply_random_change(&mut engine, &mut rng);
            prop_assert!(engine.run_to_convergence().converged);
            assert_matches_oracle(&engine)?;
        }
    }

    /// Checkpoint/restore carries the metric identity (the METR section):
    /// an engine restored with a *closeness-only* config from a snapshot
    /// of a betweenness-maintaining engine keeps publishing the column,
    /// and it re-converges to the oracle bits.
    #[test]
    fn restore_preserves_metric_identity_and_exactness(
        g in arb_graph(),
        p in 1usize..4,
        steps in 0usize..4,
        seed in 0u64..1000,
    ) {
        let mut engine = AnytimeEngine::new(g.clone(), config(p, false, true)).unwrap();
        for _ in 0..steps {
            engine.rc_step();
        }
        let bytes = engine.checkpoint_bytes().expect("checkpoint");
        let mut restored =
            AnytimeEngine::restore(&bytes[..], config(p, false, false)).expect("restore");
        prop_assert!(restored.metric_mask().contains(MetricKind::Betweenness));
        prop_assert!(restored.run_to_convergence().converged);
        assert_matches_oracle(&restored)?;
        // And the closeness bits agree with an undisturbed reference run.
        let mut reference = AnytimeEngine::new(g, config(p, false, false)).unwrap();
        prop_assert!(reference.run_to_convergence().converged);
        prop_assert_eq!(restored.published().closeness(), reference.published().closeness());
        let _ = seed;
    }

    /// A forced repartition + migration must not disturb either column:
    /// closeness stays bit-equal to the closeness-only engine's and the
    /// betweenness column re-converges to the oracle.
    #[test]
    fn rebalance_preserves_both_columns(
        g in arb_graph(),
        p in 2usize..4,
        seed in 0u64..1000,
    ) {
        let mut a = AnytimeEngine::new(g.clone(), config(p, false, false)).unwrap();
        let mut b = AnytimeEngine::new(g, config(p, false, true)).unwrap();
        prop_assert!(a.run_to_convergence().converged);
        prop_assert!(b.run_to_convergence().converged);
        a.rebalance(seed).expect("rebalance");
        b.rebalance(seed).expect("rebalance");
        prop_assert!(a.run_to_convergence().converged);
        prop_assert!(b.run_to_convergence().converged);
        prop_assert_eq!(a.published().closeness(), b.published().closeness());
        prop_assert_eq!(a.distances(), b.distances());
        assert_matches_oracle(&b)?;
    }
}

proptest! {
    // Fewer cases: the parallel executor spins real worker threads.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Contract 2 on the parallel executor: the kernel is bit-identical
    /// across executors, so the published column must still equal the
    /// oracle exactly after every drain.
    #[test]
    fn incremental_betweenness_matches_oracle_on_parallel_executor(
        g in arb_graph(),
        p in 2usize..4,
        rounds in 1usize..3,
        seed in 0u64..1000,
    ) {
        let mut engine = AnytimeEngine::new(g, config(p, true, true)).unwrap();
        prop_assert!(engine.run_to_convergence().converged);
        assert_matches_oracle(&engine)?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..rounds {
            apply_random_change(&mut engine, &mut rng);
            prop_assert!(engine.run_to_convergence().converged);
            assert_matches_oracle(&engine)?;
        }
    }
}
