//! Snapshot round-trip properties: `restore(checkpoint(e))` must reproduce
//! the engine exactly — same DV fixed points, closeness vectors and RC
//! counters — on random graphs under both executors; and corrupted or
//! truncated snapshots must fail with typed errors, never panic.

use anytime_anywhere::checkpoint::{CheckpointError, Snapshot, FORMAT_VERSION, MAGIC};
use anytime_anywhere::core::{AnytimeEngine, CoreError, EngineConfig};
use anytime_anywhere::graph::{AdjGraph, GraphBuilder};
use anytime_anywhere::runtime::ExecutionMode;
use proptest::prelude::*;

/// An arbitrary simple weighted graph with `n ∈ [2, 40]` vertices.
fn arb_graph() -> impl Strategy<Value = AdjGraph> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..10), 0..(3 * n));
        edges.prop_map(move |edges| {
            let mut b = GraphBuilder::with_vertices(n);
            for (u, v, w) in edges {
                b.edge(u, v, w);
            }
            b.build().expect("builder output is always valid")
        })
    })
}

fn config(p: usize, parallel: bool) -> EngineConfig {
    let mut c = EngineConfig::with_procs(p);
    c.cluster.mode = if parallel { ExecutionMode::Parallel } else { ExecutionMode::Sequential };
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn restore_of_checkpoint_reproduces_fixed_point(
        g in arb_graph(),
        p in 1usize..5,
        steps_before in 0usize..4,
        parallel_pick in 0u8..2,
    ) {
        let parallel = parallel_pick == 1;
        let mut engine = AnytimeEngine::new(g, config(p, parallel)).unwrap();
        for _ in 0..steps_before {
            engine.rc_step();
        }
        let bytes = engine.checkpoint_bytes().unwrap();
        let mut restored = AnytimeEngine::restore(&bytes[..], config(p, parallel)).unwrap();

        // Resume point is exact…
        prop_assert_eq!(restored.rc_steps_done(), engine.rc_steps_done());
        prop_assert_eq!(restored.graph().num_vertices(), engine.graph().num_vertices());
        prop_assert_eq!(restored.distances(), engine.distances());
        prop_assert_eq!(restored.closeness(), engine.closeness());

        // …and both runs converge to the identical fixed point.
        let s1 = engine.run_to_convergence();
        let s2 = restored.run_to_convergence();
        prop_assert!(s1.converged && s2.converged);
        prop_assert_eq!(restored.rc_steps_done(), engine.rc_steps_done());
        prop_assert_eq!(restored.distances(), engine.distances());
        prop_assert_eq!(restored.closeness(), engine.closeness());
    }

    #[test]
    fn snapshot_bytes_roundtrip_is_lossless(
        g in arb_graph(),
        p in 1usize..5,
        steps in 0usize..5,
    ) {
        let mut engine = AnytimeEngine::new(g, config(p, false)).unwrap();
        for _ in 0..steps {
            engine.rc_step();
        }
        let snap = engine.snapshot();
        let bytes = snap.to_bytes().unwrap();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.meta, snap.meta);
        prop_assert_eq!(back.graph, snap.graph);
        prop_assert_eq!(back.partition, snap.partition);
        prop_assert_eq!(back.ranks, snap.ranks);
        // Re-serializing the parsed snapshot is byte-identical.
        prop_assert_eq!(back.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn truncation_never_panics_and_is_typed(
        g in arb_graph(),
        cut_permille in 0usize..1000,
    ) {
        let mut engine = AnytimeEngine::new(g, config(2, false)).unwrap();
        engine.run_to_convergence();
        let bytes = engine.checkpoint_bytes().unwrap();
        let cut = bytes.len() * cut_permille / 1000;
        prop_assume!(cut < bytes.len());
        let result = Snapshot::from_bytes(&bytes[..cut]);
        prop_assert!(result.is_err(), "truncated snapshot parsed at cut {}", cut);
        let err = result.unwrap_err();
        prop_assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. }
                    | CheckpointError::BadMagic { .. }
                    | CheckpointError::Malformed(_)
            ),
            "unexpected error class: {:?}",
            err
        );
    }

    #[test]
    fn payload_corruption_is_detected(
        g in arb_graph(),
        flip in 0usize..1_000_000,
    ) {
        let mut engine = AnytimeEngine::new(g, config(2, false)).unwrap();
        let mut bytes = engine.checkpoint_bytes().unwrap();
        // Flip one byte past the header (magic + version + section count).
        let header = MAGIC.len() + 8;
        let i = header + flip % (bytes.len() - header);
        bytes[i] ^= 0xFF;
        // Any typed error is acceptable (CRC usually; a corrupted length
        // or count may surface as truncation/malformed first) — but it
        // must never parse silently into the same snapshot, and never
        // panic.
        if let Ok(parsed) = Snapshot::from_bytes(&bytes) {
            let original = Snapshot::from_bytes(&engine.checkpoint_bytes().unwrap()).unwrap();
            prop_assert!(parsed.ranks != original.ranks || parsed.meta != original.meta);
        }
    }
}

#[test]
fn wrong_magic_and_version_are_typed_errors() {
    let mut b = GraphBuilder::with_vertices(4);
    b.edge(0, 1, 1).edge(1, 2, 1);
    let g = b.build().unwrap();
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(2)).unwrap();
    let bytes = engine.checkpoint_bytes().unwrap();

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'Z';
    assert!(matches!(Snapshot::from_bytes(&bad_magic), Err(CheckpointError::BadMagic { .. })));

    let mut bad_version = bytes.clone();
    bad_version[MAGIC.len()] = (FORMAT_VERSION + 1) as u8;
    assert!(matches!(
        Snapshot::from_bytes(&bad_version),
        Err(CheckpointError::UnsupportedVersion { found, supported })
            if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
    ));

    let empty: &[u8] = &[];
    assert!(matches!(Snapshot::from_bytes(empty), Err(CheckpointError::Truncated { .. })));

    // The engine-level restore wraps the typed error instead of panicking.
    assert!(matches!(
        AnytimeEngine::restore(&bad_magic[..], EngineConfig::deterministic(2)),
        Err(CoreError::Checkpoint(CheckpointError::BadMagic { .. }))
    ));
}

#[test]
fn crc_flip_in_a_row_payload_is_a_crc_mismatch() {
    let mut b = GraphBuilder::with_vertices(6);
    b.edge(0, 1, 2).edge(1, 2, 3).edge(2, 3, 1).edge(3, 4, 4).edge(4, 5, 1);
    let g = b.build().unwrap();
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(2)).unwrap();
    engine.run_to_convergence();
    let mut bytes = engine.checkpoint_bytes().unwrap();
    // Corrupt a distance deep inside the last RNKS section payload: the
    // length prefix stays valid, so the CRC check must catch it.
    let i = bytes.len() - 12;
    bytes[i] ^= 0x01;
    assert!(matches!(Snapshot::from_bytes(&bytes), Err(CheckpointError::CrcMismatch { .. })));
}
