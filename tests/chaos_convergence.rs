//! The chaos-tolerance contract: under any seeded fault plan with a finite
//! horizon (faults eventually stop — the partial-synchrony GST assumption),
//! the supervised convergence loop must reach the **same fixed point as a
//! clean run, bit for bit**, on both executors. Min-merge is idempotent and
//! commutative and DV rows are monotone upper bounds, so drops, duplicates,
//! reorders, delays, corruption-discards, and stalls can cost time but never
//! correctness — this suite checks exactly that.
//!
//! The CI chaos-soak job sweeps `CHAOS_SOAK_SEED` to vary the fault plans
//! across matrix entries without touching the code.

use anytime_anywhere::core::{AnytimeEngine, ChaosPlan, EngineConfig, RetryPolicy};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::runtime::ExecutionMode;
use proptest::prelude::*;

/// Extra seed material from the CI soak matrix (0 for local runs).
fn soak_seed() -> u64 {
    std::env::var("CHAOS_SOAK_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// Property cases per suite: `AAA_SOAK_CASES` stretches the horizon for
/// the nightly soak without touching the fast default.
fn soak_cases(default: u32) -> u32 {
    std::env::var("AAA_SOAK_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x
}

fn config(procs: usize, mode: ExecutionMode) -> EngineConfig {
    let mut c = EngineConfig::with_procs(procs);
    c.cluster.mode = mode;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(soak_cases(24)))]

    /// Random graph × random fault plan × both executors: the supervised
    /// run must converge (not degrade) and land on the clean fixed point.
    #[test]
    fn supervised_run_reconverges_bit_identically(
        n in 40usize..100,
        gseed in 0u64..1_000,
        cseed in 0u64..1_000,
        rate_permille in 1u64..350,
        procs in 2usize..6,
    ) {
        let rate = rate_permille as f64 / 1_000.0;
        let g = barabasi_albert(n, 2, WeightModel::UniformRange { lo: 1, hi: 8 }, gseed)
            .unwrap();
        for mode in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
            let mut clean = AnytimeEngine::new(g.clone(), config(procs, mode)).unwrap();
            prop_assert!(clean.run_to_convergence().converged);

            let mut chaotic = AnytimeEngine::new(g.clone(), config(procs, mode)).unwrap();
            chaotic.set_chaos(ChaosPlan::seeded(mix(cseed, soak_seed()), rate, 24));
            let policy = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };
            let run = chaotic.run_supervised(&policy).unwrap();
            prop_assert!(
                run.converged(),
                "mode {:?}: supervised run degraded under an eventually-quiet plan: {:?}",
                mode,
                run.degraded.map(|d| d.reason)
            );
            prop_assert_eq!(chaotic.closeness(), clean.closeness());
            prop_assert_eq!(chaotic.distances(), clean.distances());
        }
    }
}

/// The same seeded plan must injure the run identically on both executors:
/// fault fates are drawn in the driver's sequential routing phase, so the
/// executor threading cannot perturb them.
#[test]
fn injected_faults_are_executor_invariant() {
    let g = barabasi_albert(80, 2, WeightModel::UniformRange { lo: 1, hi: 6 }, 3).unwrap();
    let run = |mode| {
        let mut e = AnytimeEngine::new(g.clone(), config(4, mode)).unwrap();
        e.set_chaos(ChaosPlan::seeded(mix(42, soak_seed()), 0.25, 24));
        let run =
            e.run_supervised(&RetryPolicy { max_attempts: 64, ..RetryPolicy::default() }).unwrap();
        let stats = e.stats();
        (run, stats.messages, stats.bytes, stats.faults, e.closeness())
    };
    let seq = run(ExecutionMode::Sequential);
    let par = run(ExecutionMode::Parallel);
    assert_eq!(seq, par);
    assert!(seq.3.injected() > 0, "a 25% plan over a whole run must inject something");
}

/// Retried/verified repair traffic is visible in the counters: a run that
/// survived injected faults must have recorded retransmissions.
#[test]
fn repair_work_is_accounted() {
    let g = barabasi_albert(60, 2, WeightModel::Unit, 5).unwrap();
    let mut e = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
    e.set_chaos(ChaosPlan::seeded(9, 0.3, 24));
    let run =
        e.run_supervised(&RetryPolicy { max_attempts: 64, ..RetryPolicy::default() }).unwrap();
    assert!(run.converged());
    let faults = e.stats().faults;
    assert!(faults.injected() > 0);
    assert!(
        faults.retransmits > 0,
        "surviving {} injected faults requires repair traffic",
        faults.injected()
    );
    assert!(run.retries + run.verification_passes > 0);
}
