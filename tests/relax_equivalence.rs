//! Equivalence harness for the relaxation-kernel rewrite: the arena-backed
//! Jacobi kernel must reach the same rank-local fixed point — and produce
//! the same dirty set — as the original hashmap-backed Gauss-Seidel
//! worklist kernel, on random graphs and random update streams, with both
//! the sequential and the multi-threaded executor.
//!
//! The reference model below re-implements the pre-arena kernel verbatim
//! (rows in ordered maps, row taken out while relaxing, pivot rows read
//! *current* mid-round). Equality holds because both kernels run monotone
//! min-merge relaxations to quiescence over the same schedule soundness
//! invariant, so they share one fixed point; and a row is dirty iff it
//! ever changed iff (by monotonicity) its final value differs from its
//! initial one — identical on both sides.

use anytime_anywhere::core::rank::{RankState, RowMsg, RowPayload};
use anytime_anywhere::graph::{AdjGraph, GraphBuilder, INF};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// An arbitrary simple weighted graph with `n ∈ [2, 32]` vertices.
fn arb_graph() -> impl Strategy<Value = AdjGraph> {
    (2usize..32).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..8), 0..(3 * n));
        edges.prop_map(move |edges| {
            let mut b = GraphBuilder::with_vertices(n);
            for (u, v, w) in edges {
                b.edge(u, v, w);
            }
            b.build().expect("builder output is always valid")
        })
    })
}

/// The pre-arena `RankState` replica: rows in ordered maps, plus the dirty
/// set, mirroring exactly what the old consume/relax pair did.
struct Reference {
    locals: Vec<u32>,
    rows: BTreeMap<u32, Vec<u32>>,
    dirty: BTreeSet<u32>,
}

impl Reference {
    /// Captures a live state (any implementation) into the model.
    fn capture(state: &RankState) -> Self {
        let mut rows = BTreeMap::new();
        for v in state.dv().all_ids_sorted() {
            rows.insert(v, state.dv().row(v).expect("listed row exists").to_vec());
        }
        Self {
            locals: state.local_vertices().to_vec(),
            rows,
            dirty: state.dv().dirty_sorted().into_iter().collect(),
        }
    }

    /// The old `consume_rc_messages`: min-merge every incoming row (cached
    /// rows are created on first contact and count as changed), then relax
    /// the changed set to the fixed point.
    fn consume(&mut self, inbox: &[(u32, Vec<u32>)]) -> bool {
        let mut worklist: BTreeSet<u32> = BTreeSet::new();
        for (v, incoming) in inbox {
            let is_local = self.locals.binary_search(v).is_ok();
            let changed = match self.rows.get_mut(v) {
                Some(row) => {
                    let mut changed = false;
                    for (d, &s) in row.iter_mut().zip(incoming) {
                        if s < *d {
                            *d = s;
                            changed = true;
                        }
                    }
                    changed
                }
                None => {
                    debug_assert!(!is_local);
                    let n = incoming.len();
                    let mut row = vec![INF; n];
                    for (d, &s) in row.iter_mut().zip(incoming) {
                        *d = (*d).min(s);
                    }
                    self.rows.insert(*v, row);
                    true
                }
            };
            if changed {
                if is_local {
                    self.dirty.insert(*v);
                }
                worklist.insert(*v);
            }
        }
        self.relax_worklist(worklist)
    }

    /// The old Gauss-Seidel worklist kernel, verbatim: rows visited in
    /// sorted-local order, the row under relaxation removed from the map
    /// (so it never serves as its own pivot), every other pivot row read
    /// at its *current* (mid-round) value.
    fn relax_worklist(&mut self, initial: BTreeSet<u32>) -> bool {
        let mut pivots: Vec<u32> = initial.iter().copied().collect();
        let mut full_targets: BTreeSet<u32> = initial;
        let all_rows: Vec<u32> = self.rows.keys().copied().collect();
        let mut any = false;
        while !pivots.is_empty() || !full_targets.is_empty() {
            let mut next: BTreeSet<u32> = BTreeSet::new();
            for &v in &self.locals {
                let mut row = match self.rows.remove(&v) {
                    Some(r) => r,
                    None => continue,
                };
                let mut changed = false;
                let pivot_set: &[u32] = if full_targets.contains(&v) { &all_rows } else { &pivots };
                for &u in pivot_set {
                    if u == v {
                        continue;
                    }
                    let through = row[u as usize];
                    if through == INF {
                        continue;
                    }
                    if let Some(urow) = self.rows.get(&u) {
                        for (r, &b) in row.iter_mut().zip(urow) {
                            let cand = through.saturating_add(b);
                            if cand < *r {
                                *r = cand;
                                changed = true;
                            }
                        }
                    }
                }
                self.rows.insert(v, row);
                if changed {
                    next.insert(v);
                    self.dirty.insert(v);
                    any = true;
                }
            }
            pivots = next.iter().copied().collect();
            full_targets = next;
        }
        any
    }
}

/// Asserts the live state matches the reference bit-for-bit: every row,
/// the dirty set, and the change verdict.
fn assert_matches(state: &RankState, reference: &Reference, ctx: &str) {
    let ids = state.dv().all_ids_sorted();
    let ref_ids: Vec<u32> = reference.rows.keys().copied().collect();
    assert_eq!(ids, ref_ids, "{ctx}: row membership diverged");
    for &v in &ids {
        assert_eq!(
            state.dv().row(v).expect("row exists"),
            reference.rows[&v].as_slice(),
            "{ctx}: row {v} diverged"
        );
    }
    let dirty: BTreeSet<u32> = state.dv().dirty_sorted().into_iter().collect();
    assert_eq!(dirty, reference.dirty, "{ctx}: dirty set diverged");
}

/// Builds the two-rank split of `g` under a seeded pseudo-random owner
/// map, runs IA on both ranks, and returns them.
fn two_ranks(g: &AdjGraph, owner_bits: u64) -> (RankState, RankState) {
    let n = g.num_vertices();
    let owner: Vec<u32> = (0..n).map(|v| ((owner_bits >> (v % 64)) & 1) as u32).collect();
    let adj = |v: u32| g.neighbors(v).to_vec();
    let mut r0 = RankState::build(0, owner.clone(), adj);
    let mut r1 = RankState::build(1, owner, adj);
    r0.initial_approximation();
    r1.initial_approximation();
    (r0, r1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random graph, random partition, two consume rounds: first the real
    /// boundary rows produced by the peer rank, then a round of arbitrary
    /// synthetic rows (random distances, random targets — exercising
    /// cached-row creation and non-boundary pivots). After every round,
    /// the arena kernel must match the old kernel on rows, dirty set, and
    /// verdict, under both 1 and 4 worker threads.
    #[test]
    fn arena_kernel_matches_old_kernel(
        g in arb_graph(),
        owner_bits in 0u64..u64::MAX,
        synthetic in proptest::collection::vec(
            (0usize..32, proptest::collection::vec(0u32..40, 32)), 0..6),
    ) {
        let n = g.num_vertices();
        let (r0, mut r1) = two_ranks(&g, owner_bits);
        let mut reference = Reference::capture(&r0);
        let mut seq = r0.clone();
        let mut par = r0;
        seq.set_kernel_threads(1);
        par.set_kernel_threads(4);

        // Round 1: the peer's real post-IA boundary rows.
        let inbox: Vec<(usize, RowMsg)> = r1
            .produce_rc_messages(usize::MAX)
            .into_iter()
            .filter(|&(q, _)| q == 0)
            .map(|(_, m)| (1usize, m))
            .collect();
        let ref_inbox: Vec<(u32, Vec<u32>)> = inbox
            .iter()
            .flat_map(|(_, m)| &m.rows)
            .map(|(v, p)| match p {
                RowPayload::Full(row) => (*v, row.clone()),
                RowPayload::Delta(_) => unreachable!("full wire produces full rows"),
            })
            .collect();
        let ref_changed = reference.consume(&ref_inbox);
        seq.consume_rc_messages(inbox.clone());
        par.consume_rc_messages(inbox);
        prop_assert_eq!(seq.last_changed, ref_changed);
        prop_assert_eq!(par.last_changed, ref_changed);
        assert_matches(&seq, &reference, "round 1, seq");
        assert_matches(&par, &reference, "round 1, par");

        // Round 2: synthetic rows clipped to this graph's width.
        let synth: Vec<(u32, Vec<u32>)> = synthetic
            .into_iter()
            .filter(|&(v, _)| v < n)
            .map(|(v, row)| (v as u32, row[..n].to_vec()))
            .collect();
        let msg = RowMsg {
            rows: synth.iter().map(|(v, r)| (*v, RowPayload::Full(r.clone()))).collect(),
        };
        let ref_changed = reference.consume(&synth);
        seq.consume_rc_messages(vec![(1usize, msg.clone())]);
        par.consume_rc_messages(vec![(1usize, msg)]);
        prop_assert_eq!(seq.last_changed, ref_changed);
        prop_assert_eq!(par.last_changed, ref_changed);
        assert_matches(&seq, &reference, "round 2, seq");
        assert_matches(&par, &reference, "round 2, par");
    }
}
