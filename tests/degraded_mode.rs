//! Degraded-mode answers: when faults never stop and the retry/fallback
//! budgets run out, `run_supervised` must still return `Ok` — with the
//! current anytime estimate and a **certified** per-vertex error bound that
//! provably covers the exact closeness. Also checks the inverse contract:
//! disarming chaos afterwards lets the same engine reconverge exactly, and
//! an engine that never arms chaos pays nothing for the feature.

use anytime_anywhere::core::{AnytimeEngine, ChaosPlan, DegradedReason, EngineConfig, RetryPolicy};
use anytime_anywhere::graph::closeness::closeness_exact;
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::graph::Csr;

#[test]
fn degraded_answer_carries_a_certified_bound() {
    let g = barabasi_albert(60, 2, WeightModel::UniformRange { lo: 1, hi: 5 }, 11).unwrap();
    let exact = closeness_exact(&Csr::from_adj(&g));
    let mut e = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    // Faults never stop (infinite horizon) and the supervisor is given no
    // budget at all: the first detectable incident forces the degraded path.
    e.set_chaos(ChaosPlan::seeded(7, 0.8, u64::MAX));
    let policy = RetryPolicy { max_attempts: 0, max_fallbacks: 0, ..RetryPolicy::default() };
    let run = e.run_supervised(&policy).unwrap();

    assert!(!run.summary.converged);
    let report = run.degraded.expect("no budget + endless faults must degrade");
    assert!(matches!(report.reason, DegradedReason::RetriesExhausted { .. }));
    assert!(report.faults.injected() > 0, "an 80% plan must have injected something");
    assert_eq!(report.estimate.len(), exact.len());
    assert_eq!(report.bound.len(), exact.len());
    // The acceptance criterion: the bound covers the measured error.
    for (v, (&ex, (&est, &b))) in
        exact.iter().zip(report.estimate.iter().zip(&report.bound)).enumerate()
    {
        assert!((ex - est).abs() <= b + 1e-12, "vertex {v}: |{ex} − {est}| > bound {b}");
    }
    assert!(report.certifies(&exact));
    assert!(report.max_bound() >= report.mean_bound());

    // Recovery contract: disarm chaos and the same engine walks from the
    // degraded state to the exact fixed point (monotone min-merge — the
    // partial results are never poisoned, only stale).
    e.set_chaos(ChaosPlan::none());
    let summary = e.run_to_convergence();
    assert!(summary.converged);
    let mut clean = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
    clean.run_to_convergence();
    assert_eq!(e.closeness(), clean.closeness());
    assert_eq!(e.distances(), clean.distances());
}

#[test]
fn step_budget_exhaustion_also_degrades_gracefully() {
    let g = barabasi_albert(40, 2, WeightModel::Unit, 2).unwrap();
    let mut cfg = EngineConfig::deterministic(4);
    cfg.max_rc_steps = 2; // far too few for convergence
    let mut e = AnytimeEngine::new(g.clone(), cfg).unwrap();
    e.set_chaos(ChaosPlan::seeded(3, 0.4, u64::MAX));
    // Generous retry budget: it is the step budget that runs out.
    let run = e.run_supervised(&RetryPolicy { max_attempts: 1_000, ..Default::default() }).unwrap();
    let report = run.degraded.expect("2 RC steps cannot converge");
    assert_eq!(report.reason, DegradedReason::StepBudgetExhausted);
    assert!(report.certifies(&closeness_exact(&Csr::from_adj(&g))));
}

#[test]
fn checkpoint_fallback_is_used_before_degrading() {
    let g = barabasi_albert(50, 2, WeightModel::Unit, 8).unwrap();
    let mut e = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
    e.set_chaos(ChaosPlan::seeded(21, 0.8, u64::MAX));
    // One consecutive retry, then fall back; two fallbacks allowed.
    let policy = RetryPolicy { max_attempts: 1, max_fallbacks: 2, ..RetryPolicy::default() };
    let run = e.run_supervised(&policy).unwrap();
    // Under an infinite-horizon 80% plan the run must exhaust the budget…
    let report = run.degraded.expect("endless faults must degrade eventually");
    assert!(matches!(report.reason, DegradedReason::RetriesExhausted { .. }));
    // …but only after actually spending both fallbacks.
    assert_eq!(run.fallbacks, 2);
    assert!(run.retries > 2, "each fallback resets the consecutive-attempt counter");
}

/// Acceptance criterion: chaos is zero-cost when disabled. An engine with
/// `ChaosPlan::none()` installed must match an engine that never heard of
/// chaos on every deterministic counter, inject nothing, and converge to
/// the identical result.
#[test]
fn disarmed_chaos_is_zero_cost() {
    let g = barabasi_albert(80, 2, WeightModel::UniformRange { lo: 1, hi: 4 }, 6).unwrap();
    let mut plain = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    let mut disarmed = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
    disarmed.set_chaos(ChaosPlan::none());
    assert_eq!(disarmed.chaos_plan(), None, "none() must not arm the chaos path");

    let policy = RetryPolicy::default();
    let a = plain.run_supervised(&policy).unwrap();
    let b = disarmed.run_supervised(&policy).unwrap();
    assert!(a.converged() && b.converged());
    assert_eq!(a, b);
    assert_eq!(a.retries, 0);
    assert_eq!(a.verification_passes, 0);

    let (sa, sb) = (plain.stats(), disarmed.stats());
    assert_eq!(sa.faults.injected() + sa.faults.retransmits, 0);
    assert_eq!(sb.faults.injected() + sb.faults.retransmits, 0);
    // No fallback snapshot is taken for unarmed runs.
    assert_eq!(sa.checkpoints, 0);
    assert_eq!(sb.checkpoints, 0);
    // Deterministic counters agree exactly (wall/compute clocks jitter).
    assert_eq!(
        (sa.messages, sa.bytes, sa.supersteps, sa.collectives),
        (sb.messages, sb.bytes, sb.supersteps, sb.collectives)
    );
    assert_eq!(sa.sim_comm_us, sb.sim_comm_us);
    assert_eq!(plain.closeness(), disarmed.closeness());
}
