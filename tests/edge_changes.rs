//! The companion dynamic-edge strategies: additions [9], deletions [10],
//! weight changes [7] — each must converge to the from-scratch answer on
//! the final graph.

use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, DynamicChange, EngineConfig};
use anytime_anywhere::graph::apsp::apsp_dijkstra;
use anytime_anywhere::graph::generators::{barabasi_albert, erdos_renyi, WeightModel};
use anytime_anywhere::graph::{AdjGraph, Csr};

fn assert_matches_reference(engine: &mut AnytimeEngine, expected_graph: &AdjGraph) {
    let summary = engine.run_to_convergence();
    assert!(summary.converged);
    let reference = apsp_dijkstra(&Csr::from_adj(expected_graph));
    assert_eq!(engine.distances(), reference);
}

#[test]
fn edge_addition_mid_analysis() {
    let g = barabasi_albert(80, 2, WeightModel::Unit, 3).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.rc_step();
    // Find a non-edge pair far apart.
    let (u, v) = (0u32, 79u32);
    let mut full = g.clone();
    if !full.has_edge(u, v) {
        full.add_edge(u, v, 1).unwrap();
        engine.add_edge(u, v, 1).unwrap();
    }
    assert_matches_reference(&mut engine, &full);
}

#[test]
fn many_edge_additions_connect_components() {
    // Disconnected ER graph; add bridges dynamically.
    let g = erdos_renyi(60, 25, WeightModel::Unit, 5).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.run_to_convergence();
    let mut full = g.clone();
    for i in 0..10u32 {
        let (u, v) = (i, 59 - i);
        if u != v && !full.has_edge(u, v) {
            full.add_edge(u, v, 2).unwrap();
            engine.add_edge(u, v, 2).unwrap();
        }
    }
    assert_matches_reference(&mut engine, &full);
}

#[test]
fn edge_deletion_partial_restart() {
    let g = barabasi_albert(60, 3, WeightModel::Unit, 7).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.run_to_convergence();
    let (u, v, _) = g.edges().next().unwrap();
    let mut full = g.clone();
    full.remove_edge(u, v).unwrap();
    engine.remove_edge(u, v).unwrap();
    assert_matches_reference(&mut engine, &full);
}

#[test]
fn weight_decrease_is_incremental() {
    let g = barabasi_albert(70, 2, WeightModel::UniformRange { lo: 3, hi: 9 }, 11).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.run_to_convergence();
    let (u, v, _) = g.edges().nth(5).unwrap();
    let mut full = g.clone();
    full.set_weight(u, v, 1).unwrap();
    engine.set_edge_weight(u, v, 1).unwrap();
    assert_matches_reference(&mut engine, &full);
}

#[test]
fn weight_increase_invalidates_and_recovers() {
    let g = barabasi_albert(60, 2, WeightModel::Unit, 13).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(4)).unwrap();
    engine.run_to_convergence();
    let (u, v, _) = g.edges().next().unwrap();
    let mut full = g.clone();
    full.set_weight(u, v, 50).unwrap();
    engine.set_edge_weight(u, v, 50).unwrap();
    assert_matches_reference(&mut engine, &full);
}

#[test]
fn mixed_change_stream_via_apply_change() {
    let g = barabasi_albert(50, 2, WeightModel::Unit, 17).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(3)).unwrap();
    let mut full = g.clone();
    engine.rc_step();

    // Addition.
    if !full.has_edge(3, 47) {
        full.add_edge(3, 47, 2).unwrap();
        engine
            .apply_change(&DynamicChange::AddEdge { u: 3, v: 47, w: 2 }, AssignStrategy::RoundRobin)
            .unwrap();
    }
    engine.rc_step();
    // Weight change.
    let (u, v, _) = full.edges().nth(3).unwrap();
    full.set_weight(u, v, 4).unwrap();
    engine
        .apply_change(&DynamicChange::SetWeight { u, v, w: 4 }, AssignStrategy::RoundRobin)
        .unwrap();
    engine.rc_step();
    // Deletion.
    let (u, v, _) = full.edges().nth(10).unwrap();
    full.remove_edge(u, v).unwrap();
    engine.apply_change(&DynamicChange::RemoveEdge { u, v }, AssignStrategy::RoundRobin).unwrap();

    assert_matches_reference(&mut engine, &full);
}

#[test]
fn bad_edge_operations_error_cleanly() {
    let g = barabasi_albert(20, 2, WeightModel::Unit, 1).unwrap();
    let mut engine = AnytimeEngine::new(g.clone(), EngineConfig::deterministic(2)).unwrap();
    let (u, v, _) = g.edges().next().unwrap();
    assert!(engine.add_edge(u, v, 1).is_err()); // duplicate
    assert!(engine.add_edge(0, 0, 1).is_err()); // self-loop
                                                // Removing (0, 19) must error iff the edge is absent; if it happens to
                                                // exist (it does for this seed), mirror the removal into the reference.
    let mut expected = g.clone();
    match engine.remove_edge(0, 19) {
        Ok(()) => expected.remove_edge(0, 19).unwrap(),
        Err(_) => assert!(!g.has_edge(0, 19)),
    }
    assert!(engine.set_edge_weight(0, 0, 2).is_err());
    // Still functional.
    assert_matches_reference(&mut engine, &expected);
}
