//! Fault injection + recovery end-to-end: a run interrupted by a rank
//! failure, restored from a checkpoint taken at j ≤ k, must converge to
//! the same fixed point bit-for-bit as an uninterrupted run — and the
//! stats must not double-count the replayed phase.

use anytime_anywhere::checkpoint::CheckpointPolicy;
use anytime_anywhere::core::{
    AnytimeEngine, AssignStrategy, ClusterError, CoreError, EngineConfig, FaultPlan, Snapshot,
};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::graph::AdjGraph;

fn test_graph(n: usize, seed: u64) -> AdjGraph {
    barabasi_albert(n, 3, WeightModel::UniformRange { lo: 1, hi: 8 }, seed).expect("generator")
}

/// Drives a faulted engine to convergence, recovering every failure from
/// `snapshot`, and returns how many failures were recovered.
fn converge_with_recovery(engine: &mut AnytimeEngine, snapshot: &Snapshot) -> usize {
    let mut recoveries = 0;
    loop {
        match engine.run_to_convergence_checked() {
            Ok(summary) => {
                assert!(summary.converged, "hit the RC safety bound");
                return recoveries;
            }
            Err(CoreError::Cluster(ClusterError::RankFailed { rank, .. })) => {
                engine.recover_rank(rank, snapshot).expect("recovery");
                recoveries += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

#[test]
fn fault_interrupted_run_recovers_bit_identical() {
    let g = test_graph(300, 9);
    let config = EngineConfig::deterministic(4);

    let mut reference = AnytimeEngine::new(g.clone(), config.clone()).expect("engine");
    reference.run_to_convergence();
    let expected_dist = reference.distances();
    let expected_closeness = reference.closeness();

    // Checkpoint at j = 2, rank 2 dies at superstep 5 (k > j).
    let mut engine = AnytimeEngine::new(g, config).expect("engine");
    engine.rc_step();
    engine.rc_step();
    let snapshot = engine.snapshot();
    engine.inject_fault(FaultPlan::at(2, 5));

    let recoveries = converge_with_recovery(&mut engine, &snapshot);
    assert_eq!(recoveries, 1, "the armed fault fires exactly once");
    assert_eq!(engine.stats().restores, 1);
    assert_eq!(engine.distances(), expected_dist);
    assert_eq!(engine.closeness(), expected_closeness);
}

#[test]
fn recovery_replay_is_monotone_upper_bounded() {
    // Min-merge monotonicity is what makes replaying from an older
    // snapshot safe: at every point after recovery, every DV entry is an
    // upper bound on the true distance, and entries only decrease.
    let g = test_graph(200, 4);
    let config = EngineConfig::deterministic(4);

    let mut reference = AnytimeEngine::new(g.clone(), config.clone()).expect("engine");
    reference.run_to_convergence();
    let truth = reference.distances();

    let mut engine = AnytimeEngine::new(g, config).expect("engine");
    engine.rc_step();
    let snapshot = engine.snapshot(); // early snapshot: j = 1
    engine.inject_fault(FaultPlan::at(1, 6));
    let err = loop {
        match engine.rc_step_checked() {
            Ok(true) => continue,
            Ok(false) => panic!("fault should fire before quiescence"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, CoreError::Cluster(ClusterError::RankFailed { rank: 1, .. })));
    engine.recover_rank(1, &snapshot).expect("recovery");

    // Immediately after recovery — and after every subsequent RC step —
    // the partial distances never dip below the true fixed point.
    let n = truth.n();
    let check_upper_bound = |m: &anytime_anywhere::graph::apsp::DistMatrix| {
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                assert!(
                    m.get(u, v) >= truth.get(u, v),
                    "distance {}→{} dipped below the fixed point",
                    u,
                    v
                );
            }
        }
    };
    check_upper_bound(&engine.distances());
    let mut prev = engine.distances();
    while engine.rc_step() {
        let now = engine.distances();
        check_upper_bound(&now);
        // Anytime monotonicity: entries never increase step over step.
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                assert!(now.get(u, v) <= prev.get(u, v), "entry {u}→{v} increased");
            }
        }
        prev = now;
    }
    assert_eq!(engine.distances(), truth);
}

#[test]
fn recovery_from_older_snapshot_still_converges() {
    // j ≤ k with a wide gap, and a dynamic change between snapshot and
    // failure: the snapshot predates the batch, yet replay still reaches
    // the post-change fixed point.
    let g = test_graph(250, 11);
    let config = EngineConfig::deterministic(3);

    let mut engine = AnytimeEngine::new(g.clone(), config.clone()).expect("engine");
    let mut snapshots: Vec<Vec<u8>> = Vec::new();
    engine
        .run_to_convergence_checkpointed(CheckpointPolicy::EveryNRcSteps(2), |b| {
            snapshots.push(b.to_vec())
        })
        .expect("no fault armed");
    assert!(!snapshots.is_empty(), "EveryNRcSteps(2) must have fired");
    let early = Snapshot::from_bytes(&snapshots[0]).expect("snapshot readable");

    let batch = anytime_anywhere::core::changes::preferential_batch(engine.graph(), 12, 2, 5);
    engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).expect("batch");
    engine.inject_fault(FaultPlan::at(0, engine.stats().supersteps + 2));
    let recoveries = converge_with_recovery(&mut engine, &early);
    assert_eq!(recoveries, 1);

    let mut reference = AnytimeEngine::new(g, config).expect("engine");
    reference.run_to_convergence();
    reference.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).expect("batch");
    reference.run_to_convergence();
    assert_eq!(engine.distances(), reference.distances());
    assert_eq!(engine.closeness(), reference.closeness());
}

#[test]
fn restore_discards_post_checkpoint_stats() {
    // Wall/phase accounting regression: work done after the checkpoint and
    // thrown away by the restore must not be counted twice. The restored
    // engine's stats are exactly the snapshot's (plus the restore event),
    // and composing checkpoint-time stats with the retried phase's delta
    // reproduces the end state instead of double-counting.
    let g = test_graph(200, 21);
    let config = EngineConfig::deterministic(4);
    let mut engine = AnytimeEngine::new(g, config.clone()).expect("engine");
    engine.rc_step();
    engine.rc_step();
    let bytes = engine.checkpoint_bytes().expect("checkpoint");
    let at_checkpoint = engine.stats();
    assert_eq!(at_checkpoint.checkpoints, 1);

    // Post-checkpoint work that a failure would discard.
    engine.run_to_convergence();
    let at_end = engine.stats();
    assert!(at_end.supersteps > at_checkpoint.supersteps);

    let mut restored = AnytimeEngine::restore(&bytes[..], config).expect("restore");
    let s = restored.stats();
    assert_eq!(s.restores, at_checkpoint.restores + 1);
    assert_eq!(s.supersteps, at_checkpoint.supersteps);
    assert_eq!(s.messages, at_checkpoint.messages);
    assert_eq!(s.bytes, at_checkpoint.bytes);
    assert_eq!(s.wall, at_checkpoint.wall, "discarded wall time leaked into the restore");

    // Retry the phase on the restored engine and account for it the way
    // the stats contract prescribes: as a delta since the restore point.
    let baseline = restored.stats();
    restored.run_to_convergence();
    let retry_delta = restored.stats().delta_since(&baseline);
    let mut composed = at_checkpoint;
    composed.merge(&retry_delta);
    assert_eq!(composed.supersteps, restored.stats().supersteps);
    assert!(
        composed.wall
            <= at_checkpoint.wall + retry_delta.wall + std::time::Duration::from_millis(1)
    );
}

#[test]
fn resume_counters_survive_restore() {
    let g = test_graph(150, 3);
    let config = EngineConfig::deterministic(3);
    let mut engine = AnytimeEngine::new(g, config.clone()).expect("engine");
    engine.run_to_convergence();
    let batch = anytime_anywhere::core::changes::preferential_batch(engine.graph(), 5, 2, 9);
    engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).expect("batch");
    engine.add_edge(1, 140, 3).expect("edge");
    engine.run_to_convergence();

    let bytes = engine.checkpoint_bytes().expect("checkpoint");
    let restored = AnytimeEngine::restore(&bytes[..], config).expect("restore");
    assert_eq!(restored.rc_steps_done(), engine.rc_steps_done());
    assert_eq!(restored.changes_applied(), engine.changes_applied());
    assert_eq!(restored.changes_applied(), 2);
    assert_eq!(restored.graph().num_vertices(), engine.graph().num_vertices());
    assert_eq!(restored.partition().assignment(), engine.partition().assignment());
}

#[test]
fn procs_mismatch_is_a_config_error() {
    let g = test_graph(100, 2);
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(4)).expect("engine");
    let bytes = engine.checkpoint_bytes().expect("checkpoint");
    let err = match AnytimeEngine::restore(&bytes[..], EngineConfig::deterministic(8)) {
        Ok(_) => panic!("restore with mismatched procs must fail"),
        Err(e) => e,
    };
    assert!(matches!(err, CoreError::Config(_)), "got {err:?}");
}
