//! File I/O round-trips through real temporary files, plus interop between
//! the formats.

use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::graph::io::{
    read_edge_list, read_edge_list_file, read_pajek, write_edge_list, write_edge_list_file,
    write_pajek,
};

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aaa-io-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn edge_list_file_roundtrip_preserves_graph() {
    let g = barabasi_albert(120, 2, WeightModel::UniformRange { lo: 1, hi: 9 }, 5).unwrap();
    let path = tmpdir().join("graph.edges");
    write_edge_list_file(&g, &path).unwrap();
    let back = read_edge_list_file(&path).unwrap();
    assert_eq!(back.num_vertices(), g.num_vertices());
    assert_eq!(back.num_edges(), g.num_edges());
    for (u, v, w) in g.edges() {
        assert_eq!(back.edge_weight(u, v), Some(w));
    }
    std::fs::remove_file(path).unwrap();
}

#[test]
fn pajek_and_edge_list_agree() {
    let g = barabasi_albert(60, 2, WeightModel::Unit, 9).unwrap();
    let mut pajek_bytes = Vec::new();
    write_pajek(&g, &mut pajek_bytes).unwrap();
    let mut el_bytes = Vec::new();
    write_edge_list(&g, &mut el_bytes).unwrap();
    let from_pajek = read_pajek(&pajek_bytes[..]).unwrap();
    let from_el = read_edge_list(&el_bytes[..]).unwrap();
    assert_eq!(from_pajek.num_edges(), from_el.num_edges());
    for (u, v, w) in from_el.edges() {
        assert_eq!(from_pajek.edge_weight(u, v), Some(w));
    }
}

#[test]
fn pajek_preserves_isolated_trailing_vertices() {
    use anytime_anywhere::graph::AdjGraph;
    let mut g = AdjGraph::with_vertices(10);
    g.add_edge(0, 1, 1).unwrap();
    // Vertices 2..10 isolated; Pajek's *Vertices header must carry them.
    let mut buf = Vec::new();
    write_pajek(&g, &mut buf).unwrap();
    let back = read_pajek(&buf[..]).unwrap();
    assert_eq!(back.num_vertices(), 10);
    assert_eq!(back.num_edges(), 1);
}

#[test]
fn corrupt_files_produce_typed_errors_not_panics() {
    use anytime_anywhere::graph::GraphError;
    // Must return errors (or tolerate), never panic.
    for text in ["1 2 x", "nonsense", "*Vertices\n", "1"] {
        let _ = read_edge_list(text.as_bytes());
        let _ = read_pajek(text.as_bytes());
    }
    assert!(read_edge_list("1 2 x".as_bytes()).is_err());
    assert!(read_edge_list("nonsense".as_bytes()).is_err());
    assert!(read_pajek("*Vertices\n".as_bytes()).is_err());
    // Specific: bad weight with correct line number.
    match read_edge_list("0 1 1\n0 2 bad\n".as_bytes()) {
        Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected parse error, got {other:?}"),
    }
}
