//! Cross-transport equivalence: the distributed coordinator/worker
//! protocol must reach the *same fixed point, bit for bit,* as the
//! in-process engine — over deterministic in-process channels, over real
//! TCP sockets, and over sockets with seeded fault injection.
//!
//! This is the paper's anytime-anywhere guarantee made operational:
//! min-merge on DV rows is idempotent, commutative, and monotone, so the
//! closeness at quiescence is independent of message order, retries,
//! replays, and recovery re-announcements. Any bit that differs means the
//! transport changed the *answer*, not just the schedule.

use aaa_core::{
    run_worker, AnytimeEngine, EngineConfig, NetConfig, NetOutcome, NetRunner, NoSupervisor,
    RebalanceConfig, RebalancePolicy, Revive, WorkerSupervisor,
};
use aaa_graph::generators::{barabasi_albert, WeightModel};
use aaa_graph::AdjGraph;
use aaa_runtime::{
    read_hello, Backoff, Hello, LocalTransport, NetChaos, SocketTransport, Transport,
};
use std::net::TcpListener;
use std::time::Duration;

const PROCS: usize = 4;

/// The fig4-style pinned scenario, small enough for CI.
fn scenario() -> (AdjGraph, Vec<u32>, Vec<f64>) {
    let graph = barabasi_albert(180, 2, WeightModel::UniformRange { lo: 1, hi: 4 }, 42).unwrap();
    let mut engine = AnytimeEngine::new(graph.clone(), EngineConfig::deterministic(PROCS)).unwrap();
    let owner = engine.partition().assignment().to_vec();
    engine.run_to_convergence();
    (graph, owner, engine.closeness())
}

fn assert_bit_identical(got: &[f64], want: &[f64], transport: &str) {
    assert_eq!(got.len(), want.len(), "{transport}: length mismatch");
    for (v, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{transport}: closeness of vertex {v} diverged: {g} vs {w}"
        );
    }
}

#[test]
fn local_transport_matches_the_in_process_engine_bitwise() {
    let (graph, owner, oracle) = scenario();
    let mut links = Vec::new();
    let mut workers = Vec::new();
    for rank in 0..PROCS {
        let (coord, mut worker) = LocalTransport::pair("coordinator", &format!("rank{rank}"));
        links.push(coord);
        workers.push(std::thread::spawn(move || run_worker(&mut worker, Duration::from_secs(30))));
    }
    let mut runner = NetRunner::new(&graph, owner, links, NetConfig::default());
    runner.init(&mut NoSupervisor).expect("init succeeds over local transport");
    let outcome = runner.run(&mut NoSupervisor);
    runner.shutdown();
    for w in workers {
        w.join().expect("worker thread panicked").expect("worker exited cleanly");
    }
    match outcome {
        NetOutcome::Converged(summary) => {
            assert_bit_identical(&summary.closeness, &oracle, "local");
            assert_eq!(summary.recoveries, 0);
        }
        NetOutcome::Degraded(report) => panic!("degraded without faults: {:?}", report.reason),
    }
}

/// Test-only tracing shim: logs every transport call when NET_DEBUG is
/// set, so a wedged worker can be located without a debugger.
struct Traced {
    inner: SocketTransport,
    rank: u32,
    debug: bool,
}

impl Transport for Traced {
    fn send(
        &mut self,
        kind: aaa_runtime::FrameKind,
        payload: &[u8],
    ) -> Result<u64, aaa_runtime::NetError> {
        let r = self.inner.send(kind, payload);
        if self.debug {
            if let Err(e) = &r {
                eprintln!("[worker {}] send {kind:?} -> {e}", self.rank);
            }
        }
        r
    }

    fn recv(
        &mut self,
        deadline: Option<Duration>,
    ) -> Result<aaa_runtime::Frame, aaa_runtime::NetError> {
        if self.debug {
            eprintln!("[worker {}] recv...", self.rank);
        }
        let r = self.inner.recv(deadline);
        if self.debug {
            match &r {
                Ok(f) => eprintln!("[worker {}] recv {:?} seq {}", self.rank, f.kind, f.seq),
                Err(e) => eprintln!("[worker {}] recv -> {e}", self.rank),
            }
        }
        r
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }
}

fn spawn_socket_worker(
    addr: String,
    rank: u32,
    chaos: NetChaos,
) -> std::thread::JoinHandle<Result<(), aaa_runtime::NetError>> {
    std::thread::spawn(move || {
        let hello = Hello { rank, session: rank as u64 + 1, last_recv: 0 };
        let link = SocketTransport::dial(
            &addr,
            hello,
            chaos,
            Backoff { seed: 7, ..Backoff::default() },
            40,
            Duration::from_secs(10),
        )?;
        let debug = std::env::var_os("NET_DEBUG").is_some();
        let mut link = Traced { inner: link, rank, debug };
        run_worker(&mut link, Duration::from_secs(30))
    })
}

fn accept_links(listener: &TcpListener, chaos: NetChaos) -> (Vec<SocketTransport>, Vec<u64>) {
    let mut slots: Vec<Option<SocketTransport>> = (0..PROCS).map(|_| None).collect();
    let mut sessions = vec![0u64; PROCS];
    while slots.iter().any(Option::is_none) {
        let (mut stream, _) = listener.accept().expect("accept");
        let hello = read_hello(&mut stream, Duration::from_secs(10)).expect("hello");
        let rank = hello.rank as usize;
        sessions[rank] = hello.session;
        slots[rank] = Some(SocketTransport::accept(stream, hello, chaos).expect("handshake"));
    }
    (slots.into_iter().map(Option::unwrap).collect(), sessions)
}

#[test]
fn socket_transport_matches_the_in_process_engine_bitwise() {
    let (graph, owner, oracle) = scenario();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let workers: Vec<_> = (0..PROCS)
        .map(|rank| spawn_socket_worker(addr.clone(), rank as u32, NetChaos::none()))
        .collect();
    let (links, _) = accept_links(&listener, NetChaos::none());
    let mut runner = NetRunner::new(&graph, owner, links, NetConfig::default());
    runner.init(&mut NoSupervisor).expect("init succeeds over sockets");
    let outcome = runner.run(&mut NoSupervisor);
    runner.shutdown();
    for w in workers {
        w.join().expect("worker thread panicked").expect("worker exited cleanly");
    }
    match outcome {
        NetOutcome::Converged(summary) => {
            assert_bit_identical(&summary.closeness, &oracle, "socket");
        }
        NetOutcome::Degraded(report) => panic!("degraded without faults: {:?}", report.reason),
    }
}

/// The rebalancer must work over the wire exactly as it does in-process:
/// budgeted `Reassign` rounds migrate rows between worker processes, the
/// fixed point stays bit-identical to the oracle, and the ownership map
/// ends up measurably less skewed than it started.
#[test]
fn background_rebalancer_works_over_the_wire() {
    let graph = barabasi_albert(140, 2, WeightModel::UniformRange { lo: 1, hi: 4 }, 33).unwrap();
    let mut engine = AnytimeEngine::new(graph.clone(), EngineConfig::deterministic(PROCS)).unwrap();
    engine.run_to_convergence();
    let oracle = engine.closeness();

    // A deliberately skewed ownership map: everything on rank 0 except
    // one vertex per other rank.
    let n = graph.num_vertices();
    let mut owner = vec![0u32; n];
    for q in 1..PROCS {
        owner[n - q] = q as u32;
    }
    let balance = |owner: &[u32]| {
        let mut sizes = [0usize; PROCS];
        for &p in owner {
            sizes[p as usize] += 1;
        }
        let ideal = n.div_ceil(PROCS) as f64;
        sizes.iter().copied().max().unwrap() as f64 / ideal
    };
    let skew_before = balance(&owner);
    assert!(skew_before > 2.0, "scenario must start skewed");

    let mut links = Vec::new();
    let mut workers = Vec::new();
    for rank in 0..PROCS {
        let (coord, mut worker) = LocalTransport::pair("coordinator", &format!("rank{rank}"));
        links.push(coord);
        workers.push(std::thread::spawn(move || run_worker(&mut worker, Duration::from_secs(30))));
    }
    let config = NetConfig {
        rebalance: RebalanceConfig {
            every: 2,
            budget: 16,
            ..RebalanceConfig::with_policy(RebalancePolicy::Ps)
        },
        ..NetConfig::default()
    };
    let mut runner = NetRunner::new(&graph, owner, links, config);
    runner.init(&mut NoSupervisor).expect("init succeeds over local transport");
    let outcome = runner.run(&mut NoSupervisor);
    let skew_after = balance(runner.owner());
    runner.shutdown();
    for w in workers {
        w.join().expect("worker thread panicked").expect("worker exited cleanly");
    }
    match outcome {
        NetOutcome::Converged(summary) => {
            assert_bit_identical(&summary.closeness, &oracle, "rebalanced");
        }
        NetOutcome::Degraded(report) => panic!("degraded without faults: {:?}", report.reason),
    }
    assert!(
        skew_after < skew_before,
        "migration never improved balance: {skew_before} -> {skew_after}"
    );
}

/// Heals worker links in place: waits for the worker's redial on the
/// shared listener and rebinds the broken acceptor-side transport. Thread
/// workers cannot be respawned, so a dead thread is `Gone`.
struct RebindSupervisor {
    listener: TcpListener,
    chaos: NetChaos,
    sessions: Vec<u64>,
}

impl WorkerSupervisor<SocketTransport> for RebindSupervisor {
    fn revive(
        &mut self,
        rank: usize,
        link: &mut SocketTransport,
        _attempt: u32,
    ) -> Revive<SocketTransport> {
        let debug = std::env::var_os("NET_DEBUG").is_some();
        if debug {
            eprintln!("[supervisor] revive rank {rank} attempt {_attempt}");
        }
        // Poll without blocking: if the worker never redials, give up at
        // the deadline instead of hanging in accept().
        self.listener.set_nonblocking(true).expect("nonblocking listener");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false).expect("blocking stream");
                    let hello = match read_hello(&mut stream, Duration::from_secs(5)) {
                        Ok(h) => h,
                        Err(_) => continue,
                    };
                    if debug {
                        eprintln!("[supervisor] inbound hello {hello:?} while reviving {rank}");
                    }
                    if hello.rank as usize != rank {
                        // Another rank redialing mid-crisis: rebind is only
                        // possible for the failed link we were handed, so
                        // drop the stream — that worker will redial again.
                        continue;
                    }
                    if hello.session == self.sessions[rank] {
                        if link.rebind(stream, hello).is_ok() {
                            return Revive::Healed;
                        }
                        if debug {
                            eprintln!("[supervisor] rebind of rank {rank} failed");
                        }
                        continue; // handshake lost; the worker redials
                    }
                    match SocketTransport::accept(stream, hello, self.chaos) {
                        Ok(fresh) => {
                            self.sessions[rank] = hello.session;
                            return Revive::Respawned(fresh);
                        }
                        Err(_) => continue,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return Revive::Gone,
            }
        }
        Revive::Gone
    }
}

#[test]
fn chaotic_sockets_still_converge_to_the_same_bits() {
    let (graph, owner, oracle) = scenario();
    for seed in [5u64, 23] {
        // Finite horizon: injection dries up, after which the supervised
        // run must still reach the exact fixed point.
        let chaos = NetChaos::seeded(seed, 0.08, 120);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let workers: Vec<_> =
            (0..PROCS).map(|rank| spawn_socket_worker(addr.clone(), rank as u32, chaos)).collect();
        let (links, sessions) = accept_links(&listener, chaos);
        let config = NetConfig {
            max_revivals: 64,
            probe_deadline: Duration::from_millis(500),
            ..NetConfig::default()
        };
        let mut runner = NetRunner::new(&graph, owner.clone(), links, config);
        let mut supervisor = RebindSupervisor { listener, chaos, sessions };
        runner.init(&mut supervisor).expect("init under chaos");
        let outcome = runner.run(&mut supervisor);
        runner.shutdown();
        if std::env::var_os("NET_DEBUG").is_some() {
            std::thread::sleep(Duration::from_millis(300));
            for (rank, w) in workers.into_iter().enumerate() {
                if w.is_finished() {
                    eprintln!("[driver] worker {rank} exit: {:?}", w.join());
                } else {
                    eprintln!("[driver] worker {rank} still running");
                }
            }
        } else {
            drop(workers); // threads exit on Shutdown/link error
        }
        match outcome {
            NetOutcome::Converged(summary) => {
                assert_bit_identical(&summary.closeness, &oracle, &format!("chaos seed {seed}"));
            }
            NetOutcome::Degraded(report) => {
                panic!("seed {seed} degraded: {:?}", report.reason)
            }
        }
    }
}
